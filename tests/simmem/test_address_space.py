"""Tests for the simulated address space and allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.simmem.address_space import AddressSpace, GLOBAL_BASE, HEAP_BASE


class TestAllocation:
    def test_heap_regions_disjoint(self, space):
        a = space.malloc(100, "a")
        b = space.malloc(100, "b")
        assert a.end <= b.base

    def test_guard_gap(self):
        space = AddressSpace(guard=4096)
        a = space.malloc(64, "a")
        b = space.malloc(64, "b")
        assert b.base - a.end >= 4096

    def test_alignment(self):
        space = AddressSpace(alignment=64)
        space.malloc(1, "a")
        b = space.malloc(1, "b")
        assert b.base % 64 == 0

    def test_kinds_and_bases(self, space):
        assert space.malloc(8, "h").base >= HEAP_BASE
        assert space.alloc_global(8, "g").base >= GLOBAL_BASE
        frame = space.push_frame(64, "f")
        assert frame.kind == "stack"
        assert frame.base > space.malloc(8).base

    def test_stack_grows_down(self, space):
        f1 = space.push_frame(64)
        f2 = space.push_frame(64)
        assert f2.end <= f1.base

    def test_bad_sizes_rejected(self, space):
        with pytest.raises(ValueError):
            space.malloc(0)
        with pytest.raises(ValueError):
            space.alloc_global(-1)
        with pytest.raises(ValueError):
            space.push_frame(0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(alignment=48)


class TestRecycling:
    def test_same_size_reuses_address(self, space):
        a = space.malloc(128, "a")
        base = a.base
        space.free(a)
        b = space.malloc(128, "b")
        assert b.base == base

    def test_different_size_not_reused(self, space):
        a = space.malloc(128, "a")
        space.free(a)
        b = space.malloc(4096, "b")
        assert b.base != a.base

    def test_double_free_rejected(self, space):
        a = space.malloc(64)
        space.free(a)
        with pytest.raises(KeyError):
            space.free(a)

    def test_alloc_log_includes_recycled(self, space):
        a = space.malloc(128, "map")
        space.free(a)
        space.malloc(128, "map")
        assert len([e for e in space.alloc_log if e[0] == "map"]) == 2

    def test_extent_of_covers_history(self, space):
        a = space.malloc(128, "obj")
        space.free(a)
        space.malloc(128, "obj")
        lo, hi = space.extent_of("obj")
        assert lo == a.base
        assert hi == a.base + 128

    def test_extent_missing_label(self, space):
        with pytest.raises(KeyError):
            space.extent_of("ghost")


class TestLookup:
    def test_region_of(self, space):
        a = space.malloc(100, "a")
        assert space.region_of(a.base) is a
        assert space.region_of(a.base + 99) is a
        assert space.region_of(a.base + 100) is None
        assert space.region_of(0) is None

    def test_find_by_name(self, space):
        space.malloc(8, "x")
        b = space.malloc(8, "y")
        assert space.find("y") is b
        with pytest.raises(KeyError):
            space.find("z")

    def test_regions_sorted(self, space):
        space.push_frame(64)
        space.malloc(8)
        space.alloc_global(8)
        bases = [r.base for r in space.regions]
        assert bases == sorted(bases)


class TestValues:
    def test_store_load(self, space):
        space.store_value(0x123, 77)
        assert space.load_value(0x123) == 77

    def test_uninitialised_zero(self, space):
        assert space.load_value(0x999) == 0


@given(sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=30))
def test_allocations_never_overlap(sizes):
    """Property: live regions are pairwise disjoint whatever the sizes."""
    space = AddressSpace()
    regions = [space.malloc(s) for s in sizes]
    spans = sorted((r.base, r.end) for r in regions)
    for (_, end1), (base2, _) in zip(spans, spans[1:]):
        assert end1 <= base2
