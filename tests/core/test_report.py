"""Tests for the paper-style table renderers."""

from collections import Counter

from repro.core.diagnostics import compute_diagnostics
from repro.core.report import (
    format_quantity,
    render_function_table,
    render_interval_table,
    render_region_table,
)
from repro.core.zoom import ZoomRegion
from repro.trace.event import make_events


class TestFormatQuantity:
    def test_scales(self):
        assert format_quantity(2.3e9) == "2.3G"
        assert format_quantity(291_000) == "291K"
        assert format_quantity(1_200_000) == "1.2M"
        assert format_quantity(42) == "42"
        assert format_quantity(0.25) == "0.25"


def _diag():
    ev = make_events(ip=1, addr=[0, 8, 100], cls=[1, 1, 2])
    return compute_diagnostics(ev, rho=2.0)


class TestFunctionTable:
    def test_columns_present(self):
        out = render_function_table({"buildMap": _diag()})
        assert "Function" in out and "F_str%" in out
        assert "buildMap" in out

    def test_order_respected(self):
        out = render_function_table(
            {"a": _diag(), "b": _diag()}, order=["b", "a"]
        )
        assert out.index("b") < out.rindex("a")

    def test_min_accesses_filter(self):
        out = render_function_table({"tiny": _diag()}, min_accesses=100)
        assert "tiny" not in out


class TestRegionTable:
    def _region(self):
        return ZoomRegion(
            base=0x1000,
            size=4096,
            depth=1,
            n_accesses=500,
            pct_of_total=25.0,
            D_mean=2.65,
            D_max=150,
            n_blocks=64,
            accesses_per_block=7.8,
            functions=Counter({"f": 500}),
        )

    def test_basic(self):
        out = render_region_table([("map", self._region())])
        assert "map" in out and "2.65" in out

    def test_max_d_column(self):
        out = render_region_table([("cc", self._region())], show_max_d=True)
        assert "Max D" in out and "150" in out


class TestIntervalTable:
    def test_rows(self):
        rows = [
            {"interval": 0, "F": 28e6, "dF": 0.475, "D": 0.01, "A": 30e3},
            {"interval": 1, "F": 55e6, "dF": 0.675, "D": 0.02, "A": 30e3},
        ]
        out = render_interval_table(rows)
        assert "28M" in out and "0.475" in out
