"""Matrix runner: corpus aggregation, cache warmth, CLI gating."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.corpus import CorpusSpec
from repro.core.diff import corpus_diff
from repro.core.matrix import run_matrix
from repro.core.report import payload_json
from repro.obs.journal import RunJournal, read_journal
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A directory corpus of two distinct deterministic workload traces."""
    root = tmp_path_factory.mktemp("corpus")
    for label, workload in (("base", "ubench:str4/irr"), ("cand", "ubench:irr")):
        rc = cli_main(
            [
                "trace",
                "--workload",
                workload,
                "--scale",
                "9",
                "--period",
                "997",
                "--buffer",
                "128",
                "--deterministic",
                "-o",
                str(root / f"{label}.npz"),
            ]
        )
        assert rc == 0
    return root


class TestRunMatrix:
    def test_cold_run_aggregates_every_cell(self, corpus_dir):
        spec = CorpusSpec.from_directory(corpus_dir)
        result = run_matrix(spec)
        assert result.modes == {"base": "full", "cand": "full"}
        payload = result.corpus_payload()
        assert payload["baseline"] == "base"
        assert payload["n_cells"] == 2
        assert sorted(payload["cells"]) == ["base", "cand"]
        for cell in payload["cells"].values():
            assert cell["n_events"] > 0
            assert set(cell["passes"]) == {"diagnostics", "hotspot", "captures", "reuse"}
            assert cell["functions"]  # per-function windows present

    def test_cell_payload_matches_report_json(self, corpus_dir, capsys):
        """A matrix cell is byte-for-byte the single-trace report payload."""
        rc = cli_main(["report", str(corpus_dir / "base.npz"), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        spec = CorpusSpec.from_directory(corpus_dir)
        cell = run_matrix(spec).cells["base"].payload
        assert payload_json(cell) == payload_json(report)

    def test_cache_sweep_opt_in_per_cell(self, corpus_dir):
        """A sweep-enabled cell gains the cache_sweep pass; others don't."""
        import dataclasses

        spec = CorpusSpec.from_directory(corpus_dir)
        spec = dataclasses.replace(
            spec,
            cells=tuple(
                dataclasses.replace(c, cache_sweep=(c.label == "cand"))
                for c in spec.cells
            ),
        )
        payload = run_matrix(spec).corpus_payload()
        assert "cache_sweep" not in payload["cells"]["base"]["passes"]
        rows = payload["cells"]["cand"]["passes"]["cache_sweep"]
        assert len(rows) == 8
        assert all(0.0 <= r["hit_ratio"] <= 1.0 for r in rows)

    def test_cli_cache_sweep_flag_enables_every_cell(self, corpus_dir, capsys):
        rc = cli_main(["matrix", str(corpus_dir), "--cache-sweep", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        for cell in payload["cells"].values():
            assert len(cell["passes"]["cache_sweep"]) == 8

    def test_warm_run_is_cached_and_byte_identical(self, corpus_dir, tmp_path):
        spec = CorpusSpec.from_directory(corpus_dir)
        cache = tmp_path / "cache"
        cold = run_matrix(spec, cache_dir=cache)
        warm = run_matrix(spec, cache_dir=cache)
        assert set(cold.modes.values()) == {"full"}
        assert set(warm.modes.values()) == {"cached"}
        assert payload_json(warm.corpus_payload()) == payload_json(cold.corpus_payload())

    def test_journal_and_metrics(self, corpus_dir, tmp_path):
        spec = CorpusSpec.from_directory(corpus_dir)
        jpath = tmp_path / "journal.jsonl"
        metrics = MetricsRegistry()
        with RunJournal(jpath) as journal:
            run_matrix(spec, journal=journal, metrics=metrics)
        lines = list(read_journal(jpath))
        cells = [r for r in lines if r["event"] == "matrix-cell"]
        assert [r["label"] for r in cells] == ["base", "cand"]
        assert all(r["mode"] == "full" and r["n_events"] > 0 for r in cells)
        (run,) = [r for r in lines if r["event"] == "matrix-run"]
        assert run["n_cells"] == 2 and run["n_full"] == 2 and run["n_cached"] == 0
        assert metrics.counters["matrix.cells"].value == 2
        assert metrics.counters["matrix.cells_full"].value == 2
        assert metrics.counters["matrix.events"].value == sum(
            r["n_events"] for r in cells
        )


class TestCliMatrix:
    def _payload(self, corpus_dir, capsys):
        rc = cli_main(["matrix", str(corpus_dir), "--json"])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_json_payload_and_exit_zero(self, corpus_dir, capsys):
        payload = self._payload(corpus_dir, capsys)
        assert payload["baseline"] == "base"
        assert sorted(payload["cells"]) == ["base", "cand"]

    def test_output_file_stable_across_cache_warmth(self, corpus_dir, tmp_path):
        cache = tmp_path / "cache"
        outs = []
        for name in ("cold.json", "warm.json"):
            out = tmp_path / name
            rc = cli_main(
                [
                    "matrix",
                    str(corpus_dir),
                    "--cache-dir",
                    str(cache),
                    "-o",
                    str(out),
                ]
            )
            assert rc == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_gate_exit_codes_and_verdict_file(self, corpus_dir, tmp_path, capsys):
        payload = self._payload(corpus_dir, capsys)
        # pick a metric that really moved, then gate just under/at its delta
        moved = [
            e
            for c in corpus_diff(payload).cells
            for e in c.evidence
            if e.delta_abs > 0
        ]
        assert moved, "corpus of distinct workloads must move some metric"
        ev = max(moved, key=lambda e: e.delta_abs)

        strict = tmp_path / "strict.toml"
        strict.write_text(
            f"[{ev.metric}]\nmax_abs = {ev.delta_abs / 2!r}\n", encoding="utf-8"
        )
        verdict_path = tmp_path / "verdict.json"
        rc = cli_main(
            [
                "matrix",
                str(corpus_dir),
                "--gate",
                str(strict),
                "--verdict",
                str(verdict_path),
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        verdict = json.loads(verdict_path.read_text(encoding="utf-8"))
        assert verdict["verdict"] == "regressed"
        assert json.loads(out) == verdict  # --json prints the verdict when gated
        cell = verdict["cells"]["cand"]
        assert cell["verdict"] == "regressed"
        assert cell["metrics"][ev.metric]["regressed"] is True

        # exactly-at-threshold is a pass, at the CLI level too
        exact = tmp_path / "exact.toml"
        exact.write_text(
            f"[{ev.metric}]\nmax_abs = {ev.delta_abs!r}\n", encoding="utf-8"
        )
        rc = cli_main(["matrix", str(corpus_dir), "--gate", str(exact)])
        capsys.readouterr()
        assert rc == 0

    def test_gate_journal_records_verdict(self, corpus_dir, tmp_path, capsys):
        payload = self._payload(corpus_dir, capsys)
        ev = max(
            (e for c in corpus_diff(payload).cells for e in c.evidence),
            key=lambda e: e.delta_abs,
        )
        assert ev.delta_abs > 0
        strict = tmp_path / "strict.toml"
        strict.write_text(
            f"[{ev.metric}]\nmax_abs = {ev.delta_abs / 2!r}\n", encoding="utf-8"
        )
        jpath = tmp_path / "journal.jsonl"
        rc = cli_main(
            [
                "matrix",
                str(corpus_dir),
                "--gate",
                str(strict),
                "--journal",
                str(jpath),
            ]
        )
        capsys.readouterr()
        assert rc == 1
        (line,) = [r for r in read_journal(jpath) if r["event"] == "matrix-verdict"]
        assert line["verdict"] == "regressed" and line["gated"] is True
        assert line["regressed_cells"] == ["cand"]

    def test_human_output_lists_cells_and_verdict(self, corpus_dir, capsys):
        rc = cli_main(["matrix", str(corpus_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== corpus" in out and "2 cells (baseline base)" in out
        assert "corpus diff:" in out
        for label in ("base", "cand"):
            assert label in out

    def test_bad_spec_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="memgaze matrix:"):
            cli_main(["matrix", str(tmp_path / "nope.toml")])

    def test_bad_gate_file_is_a_clean_error(self, corpus_dir, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("[bogus]\nmax_abs = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="memgaze matrix:"):
            cli_main(["matrix", str(corpus_dir), "--gate", str(bad)])
