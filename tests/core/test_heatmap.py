"""Tests for access/reuse heatmaps."""

import numpy as np
import pytest

from repro.core.heatmap import access_heatmap, render_heatmap_ascii
from repro.trace.event import make_events


class TestAccessHeatmap:
    def test_shape_and_totals(self):
        ev = make_events(ip=1, addr=0x1000 + np.arange(1000) % 512, cls=2)
        hm = access_heatmap(ev, 0x1000, 512, n_pages=8, n_bins=4)
        assert hm.counts.shape == (8, 4)
        assert hm.counts.sum() == 1000

    def test_out_of_region_excluded(self):
        ev = make_events(ip=1, addr=[0x1000, 0x9000], cls=2)
        hm = access_heatmap(ev, 0x1000, 256, n_pages=2, n_bins=2)
        assert hm.counts.sum() == 1

    def test_time_binning(self):
        # all early accesses in page 0, all late in page 1
        addr = np.concatenate([np.full(50, 0x1000), np.full(50, 0x1100)])
        ev = make_events(ip=1, addr=addr, cls=2)
        hm = access_heatmap(ev, 0x1000, 512, n_pages=2, n_bins=2)
        assert hm.counts[0, 0] == 50
        assert hm.counts[1, 1] == 50

    def test_reuse_matrix(self):
        ev = make_events(ip=1, addr=np.full(10, 0x1000), cls=2)
        hm = access_heatmap(ev, 0x1000, 64, n_pages=1, n_bins=1)
        assert hm.reuse[0, 0] == 0.0  # immediate re-accesses

    def test_reuse_nan_where_no_reuse(self):
        ev = make_events(ip=1, addr=0x1000 + np.arange(4) * 64, cls=2)
        hm = access_heatmap(ev, 0x1000, 256, n_pages=4, n_bins=1)
        assert np.all(np.isnan(hm.reuse))

    def test_constants_excluded(self):
        ev = make_events(ip=1, addr=[0x1000], cls=0)
        hm = access_heatmap(ev, 0x1000, 64, n_pages=1, n_bins=1)
        assert hm.counts.sum() == 0

    def test_bad_args(self):
        ev = make_events(ip=1, addr=[0x1000], cls=2)
        with pytest.raises(ValueError):
            access_heatmap(ev, 0, 0)
        with pytest.raises(TypeError):
            access_heatmap(np.zeros(3), 0, 64)


class TestAsciiRender:
    def test_dimensions(self):
        out = render_heatmap_ascii(np.ones((3, 5)))
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == 5 for l in lines)

    def test_larger_values_darker(self):
        shades = render_heatmap_ascii(np.array([[0.0, 1000.0]]), log=False)
        assert shades[0] == " "
        assert shades[1] != " "

    def test_nan_treated_as_zero(self):
        out = render_heatmap_ascii(np.array([[np.nan, 1.0]]))
        assert out[0] == " "

    def test_all_zero(self):
        assert render_heatmap_ascii(np.zeros((2, 2))) == "  \n  "
