"""The persistent analysis cache: content addressing, warm hits, increments.

The store's contract (:mod:`repro.core.artifacts`) is that a cached
result is indistinguishable from recomputation: warm runs are
bit-identical to cold ones, an appended archive rescans only its tail,
and anything that would break that equivalence — damaged entries, a cut
mid-sample, missing sample ids — falls back to a full scan, journaled.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.artifacts import MISS, SCHEMA_VERSION, ArtifactStore, freeze_params
from repro.core.parallel import ParallelEngine
from repro.obs.journal import RunJournal, read_journal
from repro.obs.metrics import MetricsRegistry
from repro.trace.event import make_events
from repro.trace.tracefile import TraceMeta, read_trace_health, write_trace

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "obs"))
import faults  # noqa: E402

#: events per synthetic sample — append cuts must land on a multiple
SAMPLE = 500


def _trace(n, seed=0):
    """Deterministic mixed trace; sample ids are runs of SAMPLE events."""
    rng = derive_rng(seed, "artifacts-trace")
    ev = make_events(
        ip=rng.integers(0, 40, n),
        addr=rng.integers(0, 1 << 18, n),
        cls=rng.choice([0, 1, 2], n, p=[0.2, 0.4, 0.4]).astype(np.uint8),
        fn=rng.integers(0, 4, n),
    )
    sid = (np.arange(n) // SAMPLE).astype(np.int32)
    return ev, sid


def _write(path, ev, sid, n_loads=None):
    meta = TraceMeta(
        module="test", kind="sampled", period=1000, buffer_capacity=256,
        n_loads_total=n_loads or len(ev) * 3,
        n_samples=int(sid.max()) + 1 if sid is not None and len(sid) else 0,
    )
    write_trace(path, ev, meta, sid)
    return path


def _analysis_tuple(fa):
    """Everything analyze_file computes, as a comparable value."""
    return (
        fa.n_events,
        fa.rho,
        fa.diagnostics,
        fa.captures,
        fa.survivals,
        fa.reuse.counts.tolist(),
        fa.reuse.n_cold,
        fa.reuse.n_reuse,
        fa.reuse.d_sum,
        fa.reuse.d_max,
        fa.reuse.scope,
    )


class TestFreezeParams:
    def test_ndarray_keys_by_content(self):
        a = freeze_params(np.arange(4))
        b = freeze_params(np.arange(4))
        c = freeze_params(np.arange(5))
        assert a == b and a != c

    def test_dict_order_insensitive(self):
        assert freeze_params({"a": 1, "b": [2]}) == freeze_params({"b": (2,), "a": 1})

    def test_repr_is_process_stable(self):
        frozen = freeze_params({"block": 64, "edges": np.array([1.0, 2.0])})
        assert "object at 0x" not in repr(frozen)


class TestDigests:
    def test_archive_and_memory_digests_agree(self, tmp_path):
        ev, sid = _trace(3000)
        path = _write(tmp_path / "t.npz", ev, sid)
        assert ArtifactStore.archive_digest(path) == ArtifactStore.digest_events(ev, sid)

    def test_digest_changes_with_content(self, tmp_path):
        ev, sid = _trace(3000)
        d0 = ArtifactStore.digest_events(ev, sid)
        ev2 = ev.copy()
        ev2["addr"][1500] ^= 0x40
        assert ArtifactStore.digest_events(ev2, sid) != d0

    def test_digest_independent_of_path(self, tmp_path):
        ev, sid = _trace(2000)
        a = _write(tmp_path / "a.npz", ev, sid)
        b = _write(tmp_path / "sub.npz", ev, sid)
        assert ArtifactStore.archive_digest(a) == ArtifactStore.archive_digest(b)

    def test_digest_distinguishes_sample_ids(self):
        ev, sid = _trace(2000)
        with_sid = ArtifactStore.digest_events(ev, sid)
        without = ArtifactStore.digest_events(ev, None)
        assert with_sid != without

    def test_unusable_health_digests_none(self):
        assert ArtifactStore.digest_health({"bogus": True}) is None


class TestPrefixState:
    def _stores_state(self, tmp_path, ev, sid):
        store = ArtifactStore(tmp_path / "cache")
        path = _write(tmp_path / "t.npz", ev, sid)
        health = read_trace_health(path)
        digest = ArtifactStore.digest_health(health)
        store.put_state(digest, health, int(sid[-1]))
        return store, health

    def test_finds_appended_extension(self, tmp_path):
        ev, sid = _trace(10 * SAMPLE)
        store, _ = self._stores_state(tmp_path, ev, sid)
        ev2, sid2 = _trace(14 * SAMPLE)
        ev2[: len(ev)] = ev  # same prefix, 4 appended samples
        bigger = _write(tmp_path / "t2.npz", ev2, sid2)
        state = store.find_prefix_state(read_trace_health(bigger))
        assert state is not None
        assert state["n_events"] == len(ev)
        assert state["last_sample_id"] == int(sid[-1])

    def test_rejects_modified_prefix(self, tmp_path):
        ev, sid = _trace(10 * SAMPLE)
        store, _ = self._stores_state(tmp_path, ev, sid)
        ev2, sid2 = _trace(14 * SAMPLE)
        ev2[: len(ev)] = ev
        ev2["addr"][3] ^= 0x10  # prefix differs → not an extension
        other = _write(tmp_path / "t2.npz", ev2, sid2)
        # with <1 full CRC chunk the mismatch surfaces in the skip scan,
        # not here; with full chunks it must be rejected outright
        state = store.find_prefix_state(read_trace_health(other))
        if state is not None:
            assert state["events_crc"] != read_trace_health(other)["events_crc"][:1]

    def test_rejects_without_sample_ids(self, tmp_path):
        ev, sid = _trace(10 * SAMPLE)
        store, _ = self._stores_state(tmp_path, ev, sid)
        ev2, sid2 = _trace(14 * SAMPLE)
        ev2[: len(ev)] = ev
        bare = _write(tmp_path / "bare.npz", ev2, None)
        assert store.find_prefix_state(read_trace_health(bare)) is None

    def test_rejects_same_or_shorter_trace(self, tmp_path):
        ev, sid = _trace(10 * SAMPLE)
        store, health = self._stores_state(tmp_path, ev, sid)
        assert store.find_prefix_state(health) is None  # not a strict prefix
        shorter = _write(tmp_path / "s.npz", ev[: 6 * SAMPLE], sid[: 6 * SAMPLE])
        assert store.find_prefix_state(read_trace_health(shorter)) is None

    def test_rejects_stale_schema(self, tmp_path):
        ev, sid = _trace(10 * SAMPLE)
        store, _ = self._stores_state(tmp_path, ev, sid)
        (name,) = store.cache.names("state-")
        state = store.cache.get(name)
        state["schema"] = SCHEMA_VERSION + 1
        store.cache.put(name, state)
        ev2, sid2 = _trace(14 * SAMPLE)
        ev2[: len(ev)] = ev
        bigger = _write(tmp_path / "t2.npz", ev2, sid2)
        assert store.find_prefix_state(read_trace_health(bigger)) is None


class TestWarmAnalyzeFile:
    def test_warm_run_is_bit_identical_and_reads_nothing(self, tmp_path):
        ev, sid = _trace(20 * SAMPLE)
        path = _write(tmp_path / "t.npz", ev, sid)
        jpath = tmp_path / "j.jsonl"

        def run():
            journal = RunJournal(jpath)
            store = ArtifactStore(tmp_path / "cache", journal=journal)
            with ParallelEngine(workers=1, store=store, journal=journal) as eng:
                return eng.analyze_file(path, chunk_size=2 * SAMPLE)

        cold, warm = run(), run()
        assert _analysis_tuple(warm) == _analysis_tuple(cold)
        lines = list(read_journal(jpath))
        stages = [r for r in lines if r.get("stage") == "analyze-file"]
        assert stages[0]["mode"] == "full"
        assert stages[1]["mode"] == "cached"
        assert sorted(stages[1]["cached_passes"]) == ["captures", "diagnostics", "reuse"]
        # the warm run never opened the events: chunk reads all precede it
        reads = [r for r in lines if r.get("event") == "chunk-read"]
        assert sum(r["n_events"] for r in reads) == len(ev), "only the cold run reads"

    def test_run_passes_store_roundtrip(self, tmp_path):
        ev, sid = _trace(4000)
        digest = ArtifactStore.digest_events(ev, sid)

        def run():
            store = ArtifactStore(tmp_path / "cache")
            with ParallelEngine(workers=1, store=store) as eng:
                r = eng.run_passes(
                    ev, ["diagnostics", "reuse"], sample_id=sid, rho=2.0,
                    window_id=(eng.window_token(), "w"), store_key=digest,
                )
                return r, store.cache.hits
        (cold, h0), (warm, h1) = run(), run()
        assert h0 == 0 and h1 > 0, "second engine must hit the disk store"
        assert warm["diagnostics"] == cold["diagnostics"]
        assert warm["reuse"].counts.tolist() == cold["reuse"].counts.tolist()
        assert warm["reuse"].d_sum == cold["reuse"].d_sum


class TestIncrementalAppend:
    def _cold_then_append(self, tmp_path, n0_samples=20, n1_samples=26, workers=1):
        ev2, sid2 = _trace(n1_samples * SAMPLE)
        n0 = n0_samples * SAMPLE
        path0 = _write(tmp_path / "t0.npz", ev2[:n0], sid2[:n0])
        path1 = _write(tmp_path / "t1.npz", ev2, sid2)
        jpath = tmp_path / "j.jsonl"

        def run(path):
            journal = RunJournal(jpath)
            store = ArtifactStore(tmp_path / "cache", journal=journal)
            with ParallelEngine(workers=workers, store=store, journal=journal) as eng:
                return eng.analyze_file(path, chunk_size=2 * SAMPLE)

        run(path0)  # prime the cache with the shorter trace
        warm = run(path1)
        cold = ParallelEngine(workers=1).analyze_file(path1, chunk_size=2 * SAMPLE)
        return warm, cold, list(read_journal(jpath)), n0

    def test_appended_trace_scans_only_the_tail(self, tmp_path):
        warm, cold, lines, n0 = self._cold_then_append(tmp_path)
        assert _analysis_tuple(warm) == _analysis_tuple(cold)
        stage = [r for r in lines if r.get("stage") == "analyze-file"][-1]
        assert stage["mode"] == "incremental"
        assert stage["skipped_events"] == n0
        skips = [r for r in lines if r.get("event") == "chunk-skip"]
        assert [r["n_events"] for r in skips] == [n0]
        # chunk-read lines after the skip cover exactly the appended tail
        i_skip = max(i for i, r in enumerate(lines) if r.get("event") == "chunk-skip")
        tail_reads = [
            r["n_events"] for r in lines[i_skip:] if r.get("event") == "chunk-read"
        ]
        assert sum(tail_reads) == warm.n_events - n0, "rescan must touch only the tail"

    def test_mid_sample_append_falls_back_to_full(self, tmp_path):
        # cut inside a sample: the tail would continue the prefix's last
        # window, so incremental analysis must refuse and rescan fully
        ev2, sid2 = _trace(26 * SAMPLE)
        mid = 20 * SAMPLE + SAMPLE // 2
        tmp2 = tmp_path / "mid"
        tmp2.mkdir()
        path0 = _write(tmp2 / "t0.npz", ev2[:mid], sid2[:mid])
        path1 = _write(tmp2 / "t1.npz", ev2, sid2)
        jpath = tmp2 / "j.jsonl"

        def run(path):
            journal = RunJournal(jpath)
            store = ArtifactStore(tmp2 / "cache", journal=journal)
            with ParallelEngine(workers=1, store=store, journal=journal) as eng:
                return eng.analyze_file(path, chunk_size=2 * SAMPLE)

        run(path0)
        got = run(path1)
        ref = ParallelEngine(workers=1).analyze_file(path1, chunk_size=2 * SAMPLE)
        assert _analysis_tuple(got) == _analysis_tuple(ref)
        stage = [r for r in read_journal(jpath) if r.get("stage") == "analyze-file"][-1]
        assert stage["mode"] == "full"
        warnings = [r for r in read_journal(jpath) if r.get("event") == "warning"]
        assert any("continues the prefix's last sample" in w["message"] for w in warnings)

    def test_incremental_with_pool_workers(self, tmp_path):
        warm, cold, lines, n0 = self._cold_then_append(tmp_path, workers=2)
        assert _analysis_tuple(warm) == _analysis_tuple(cold)
        stage = [r for r in lines if r.get("stage") == "analyze-file"][-1]
        assert stage["mode"] == "incremental"


class TestNoSampleIds:
    def test_degraded_reuse_is_marked_and_journaled(self, tmp_path):
        ev, _ = _trace(8 * SAMPLE)
        path = _write(tmp_path / "bare.npz", ev, None)
        jpath = tmp_path / "j.jsonl"
        with ParallelEngine(workers=1, journal=RunJournal(jpath)) as eng:
            fa = eng.analyze_file(path, chunk_size=2 * SAMPLE)
        assert fa.reuse_scope == "chunk"
        assert fa.reuse.scope == "chunk"
        warnings = [r for r in read_journal(jpath) if r.get("event") == "warning"]
        (w,) = [w for w in warnings if "no sample ids" in w["message"]]
        assert w["reuse_scope"] == "chunk"
        assert w["chunk_size"] == 2 * SAMPLE

    def test_sampled_archive_keeps_sample_scope(self, tmp_path):
        ev, sid = _trace(8 * SAMPLE)
        path = _write(tmp_path / "t.npz", ev, sid)
        jpath = tmp_path / "j.jsonl"
        with ParallelEngine(workers=1, journal=RunJournal(jpath)) as eng:
            fa = eng.analyze_file(path, chunk_size=2 * SAMPLE)
        assert fa.reuse_scope == "sample"
        warnings = [r for r in read_journal(jpath) if r.get("event") == "warning"]
        assert not warnings

    def test_chunk_scoped_passes_never_persisted(self, tmp_path):
        ev, _ = _trace(8 * SAMPLE)
        path = _write(tmp_path / "bare.npz", ev, None)
        store = ArtifactStore(tmp_path / "cache")

        def run():
            with ParallelEngine(workers=1, store=store) as eng:
                return eng.analyze_file(path, chunk_size=2 * SAMPLE)

        a = run()
        names_after_cold = store.cache.names("partial-")
        assert len(names_after_cold) == 2, "only diagnostics+captures are cacheable"
        b = run()  # warm: reuse must be rescanned, not served stale
        assert _analysis_tuple(a) == _analysis_tuple(b)
        digest = ArtifactStore.archive_digest(path)
        assert store.get_partial(digest, "reuse", {"block": 64, "max_exp": 48}) is MISS


class TestFaultInjection:
    @pytest.mark.faults
    def test_bit_flipped_entry_recomputes_correctly(self, tmp_path):
        ev, sid = _trace(12 * SAMPLE)
        path = _write(tmp_path / "t.npz", ev, sid)
        jpath = tmp_path / "j.jsonl"

        def run():
            journal = RunJournal(jpath)
            store = ArtifactStore(tmp_path / "cache", journal=journal)
            with ParallelEngine(workers=1, store=store, journal=journal) as eng:
                return eng.analyze_file(path, chunk_size=3 * SAMPLE)

        cold = run()
        for entry in sorted((tmp_path / "cache").glob("partial-*.mgc")):
            faults.flip_bytes(entry, offset_fraction=0.6)
        recovered = run()
        assert _analysis_tuple(recovered) == _analysis_tuple(cold)
        lines = list(read_journal(jpath))
        warnings = [r for r in lines if r.get("event") == "warning"]
        assert any("corrupt cache entry" in w["message"] for w in warnings)
        stage = [r for r in lines if r.get("stage") == "analyze-file"][-1]
        assert stage["mode"] == "full", "damaged entries must force a rescan"
        # and the rescan repaired the cache: a third run is fully cached
        third = run()
        assert _analysis_tuple(third) == _analysis_tuple(cold)
        stage = [r for r in read_journal(jpath) if r.get("stage") == "analyze-file"][-1]
        assert stage["mode"] == "cached"

    def test_metrics_account_cache_traffic(self, tmp_path):
        ev, sid = _trace(6 * SAMPLE)
        path = _write(tmp_path / "t.npz", ev, sid)
        m = MetricsRegistry()
        store = ArtifactStore(tmp_path / "cache", metrics=m)
        with ParallelEngine(workers=1, store=store, metrics=m) as eng:
            eng.analyze_file(path, chunk_size=2 * SAMPLE)
            eng.analyze_file(path, chunk_size=2 * SAMPLE)
        counters = m.as_dict()["counters"]
        assert counters["cache.stores"]["value"] >= 4  # 3 partials + 1 state
        assert counters["cache.hits"]["value"] >= 3
        assert counters["cache.bytes_written"]["value"] > 0


class TestConcurrentSharing:
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        ev, sid = _trace(16 * SAMPLE)
        path = _write(tmp_path / "t.npz", ev, sid)
        src = str(Path(__file__).resolve().parents[2] / "src")
        cmd = [
            sys.executable, "-m", "repro.cli", "report", str(path),
            "--passes", "diagnostics,reuse,captures",
            "--cache", "--cache-dir", str(tmp_path / "cache"),
        ]
        procs = [
            subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env={**__import__("os").environ, "PYTHONPATH": src}, text=True,
            )
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), [o[1] for o in outs]
        assert outs[0][0] == outs[1][0], "racing runs must agree bit-for-bit"
        # a third, warm run agrees too and the cache directory is intact
        third = subprocess.run(
            cmd, capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": src},
        )
        assert third.returncode == 0
        assert third.stdout == outs[0][0]
        assert not list((tmp_path / "cache").glob(".tmp-*")), "no stale temp files"

    def test_eviction_during_read_is_a_clean_miss(self, tmp_path):
        ev, sid = _trace(8 * SAMPLE)
        path = _write(tmp_path / "t.npz", ev, sid)
        store_a = ArtifactStore(tmp_path / "cache")
        with ParallelEngine(workers=1, store=store_a) as eng:
            cold = eng.analyze_file(path, chunk_size=2 * SAMPLE)
        # a second handle evicts everything mid-flight; the reader engine
        # must fall back to a scan, not crash or serve garbage
        ArtifactStore(tmp_path / "cache").prune(0)
        store_b = ArtifactStore(tmp_path / "cache")
        with ParallelEngine(workers=1, store=store_b) as eng:
            warm = eng.analyze_file(path, chunk_size=2 * SAMPLE)
        assert _analysis_tuple(warm) == _analysis_tuple(cold)
        assert store_b.cache.corrupt == 0
