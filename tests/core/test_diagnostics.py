"""Tests for footprint access diagnostics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.diagnostics import compute_diagnostics
from repro.trace.event import make_events


def _mixed():
    return make_events(
        ip=1,
        addr=[0, 8, 16, 100, 100, 999],
        cls=[1, 1, 1, 2, 2, 0],
        n_const=[0, 0, 0, 0, 0, 1],
    )


class TestFields:
    def test_access_counts(self):
        d = compute_diagnostics(_mixed())
        assert d.A_obs == 6
        assert d.A_implied == 7  # one suppressed constant
        assert d.A_est == 7.0

    def test_rho_scaling(self):
        d = compute_diagnostics(_mixed(), rho=10.0)
        assert d.A_est == 70.0
        assert d.F_est == 10.0 * d.F

    def test_footprints(self):
        d = compute_diagnostics(_mixed())
        assert d.F_str == 3
        assert d.F_irr == 1
        assert d.F == 5  # 4 data blocks + 1 constant unit

    def test_percentages(self):
        d = compute_diagnostics(_mixed())
        assert d.F_str_pct == pytest.approx(75.0)
        assert d.F_irr_pct == pytest.approx(25.0)
        assert d.F_str_pct + d.F_irr_pct == pytest.approx(100.0)
        assert d.dF_str_pct == pytest.approx(75.0)

    def test_const_fraction(self):
        d = compute_diagnostics(_mixed())
        # 1 recorded + 1 suppressed constant over 7 implied accesses
        assert d.A_const_pct == pytest.approx(100 * 2 / 7)

    def test_growth(self):
        d = compute_diagnostics(_mixed())
        assert d.dF == pytest.approx(5 / 7)

    def test_empty(self):
        d = compute_diagnostics(make_events(ip=1, addr=np.arange(0)))
        assert d.F == 0 and d.dF == 0.0 and d.F_str_pct == 0.0

    def test_rho_validated(self):
        with pytest.raises(ValueError):
            compute_diagnostics(_mixed(), rho=0.1)

    def test_block_size(self):
        d = compute_diagnostics(_mixed(), block=64)
        assert d.F_str == 1  # 0, 8, 16 collapse


@given(
    cls=st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=100),
)
def test_class_footprints_bound_total(cls):
    """Property: F_str + F_irr + const-unit bounds F from above and below."""
    n = len(cls)
    ev = make_events(ip=1, addr=np.arange(n) * 8, cls=cls)
    d = compute_diagnostics(ev)
    has_const = int(any(c == 0 for c in cls))
    # addresses are distinct, so class footprints partition exactly here
    assert d.F == d.F_str + d.F_irr + has_const
    assert 0 <= d.A_const_pct <= 100
    assert 0 <= d.F_str_pct <= 100
