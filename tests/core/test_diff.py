"""Tests for trace differencing."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.diff import diff_traces
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig

CFG = SamplingConfig(period=997, buffer_capacity=128, fill_jitter=0.0)


def _collection(per_fn: dict[int, tuple[int, int]]):
    """Build a collection: fn -> (n_accesses, cls)."""
    parts = []
    for fid, (n, cls) in per_fn.items():
        rng = derive_rng(fid, "diff-collection")
        addr = (
            (np.arange(n) * 8) % 65536
            if cls == int(LoadClass.STRIDED)
            else rng.integers(0, 65536, n)
        )
        parts.append(make_events(ip=1 + fid, addr=addr, cls=cls, fn=fid))
    ev = np.concatenate(parts)
    ev["t"] = np.arange(len(ev))
    return collect_sampled_trace(ev, config=CFG)


NAMES = {0: "insert", 1: "lookup", 2: "resize"}


class TestDiffTraces:
    def test_access_ratio_detected(self):
        before = _collection({0: (80_000, 2), 1: (40_000, 1)})
        after = _collection({0: (20_000, 2), 1: (40_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES)
        by_fn = {d.function: d for d in diff.deltas}
        assert by_fn["insert"].accesses_ratio == pytest.approx(0.25, rel=0.2)
        assert by_fn["lookup"].accesses_ratio == pytest.approx(1.0, rel=0.2)

    def test_class_shift_detected(self):
        before = _collection({0: (60_000, 2)})  # irregular
        after = _collection({0: (60_000, 1)})  # strided
        diff = diff_traces(before, after, NAMES, NAMES)
        d = diff.deltas[0]
        assert d.strided_delta > 80

    def test_new_and_removed_functions(self):
        before = _collection({0: (50_000, 1)})
        after = _collection({0: (50_000, 1), 2: (50_000, 2)})
        diff = diff_traces(before, after, NAMES, NAMES)
        by_fn = {d.function: d for d in diff.deltas}
        assert by_fn["resize"].before is None
        assert by_fn["resize"].accesses_ratio == float("inf")
        back = diff_traces(after, before, NAMES, NAMES)
        assert {d.function: d for d in back.deltas}["resize"].accesses_ratio == 0.0

    def test_ranking_puts_big_movers_first(self):
        before = _collection({0: (50_000, 1), 1: (50_000, 1)})
        after = _collection({0: (50_000, 1), 1: (200_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES)
        assert diff.deltas[0].function == "lookup"

    def test_total_ratio(self):
        before = _collection({0: (50_000, 1)})
        after = _collection({0: (100_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES)
        assert diff.total_ratio == pytest.approx(2.0, rel=0.15)

    def test_render_contains_functions(self):
        before = _collection({0: (50_000, 1)})
        after = _collection({0: (60_000, 1)})
        out = diff_traces(before, after, NAMES, NAMES, label_before="v1", label_after="v2").render()
        assert "v1 -> v2" in out
        assert "insert" in out

    def test_noise_functions_dropped(self):
        before = _collection({0: (50_000, 1), 1: (600, 2)})
        after = _collection({0: (50_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES, min_accesses=100)
        # fn1 has ~60 sampled records (<100): dropped
        assert {d.function for d in diff.deltas} == {"insert"}


class TestCliDiff:
    def test_cli_diff(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        for variant, path in (("v1", a), ("v3", b)):
            main(
                ["trace", "--workload", f"minivite:{variant}", "--scale", "7", "-o", str(path)]
            )
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out
        assert "map.insert" in out
