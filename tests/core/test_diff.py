"""Tests for trace differencing."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.diff import diff_traces
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig

CFG = SamplingConfig(period=997, buffer_capacity=128, fill_jitter=0.0)


def _collection(per_fn: dict[int, tuple[int, int]]):
    """Build a collection: fn -> (n_accesses, cls)."""
    parts = []
    for fid, (n, cls) in per_fn.items():
        rng = derive_rng(fid, "diff-collection")
        addr = (
            (np.arange(n) * 8) % 65536
            if cls == int(LoadClass.STRIDED)
            else rng.integers(0, 65536, n)
        )
        parts.append(make_events(ip=1 + fid, addr=addr, cls=cls, fn=fid))
    ev = np.concatenate(parts)
    ev["t"] = np.arange(len(ev))
    return collect_sampled_trace(ev, config=CFG)


NAMES = {0: "insert", 1: "lookup", 2: "resize"}


class TestDiffTraces:
    def test_access_ratio_detected(self):
        before = _collection({0: (80_000, 2), 1: (40_000, 1)})
        after = _collection({0: (20_000, 2), 1: (40_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES)
        by_fn = {d.function: d for d in diff.deltas}
        assert by_fn["insert"].accesses_ratio == pytest.approx(0.25, rel=0.2)
        assert by_fn["lookup"].accesses_ratio == pytest.approx(1.0, rel=0.2)

    def test_class_shift_detected(self):
        before = _collection({0: (60_000, 2)})  # irregular
        after = _collection({0: (60_000, 1)})  # strided
        diff = diff_traces(before, after, NAMES, NAMES)
        d = diff.deltas[0]
        assert d.strided_delta > 80

    def test_new_and_removed_functions(self):
        before = _collection({0: (50_000, 1)})
        after = _collection({0: (50_000, 1), 2: (50_000, 2)})
        diff = diff_traces(before, after, NAMES, NAMES)
        by_fn = {d.function: d for d in diff.deltas}
        assert by_fn["resize"].before is None
        assert by_fn["resize"].accesses_ratio == float("inf")
        back = diff_traces(after, before, NAMES, NAMES)
        assert {d.function: d for d in back.deltas}["resize"].accesses_ratio == 0.0

    def test_ranking_puts_big_movers_first(self):
        before = _collection({0: (50_000, 1), 1: (50_000, 1)})
        after = _collection({0: (50_000, 1), 1: (200_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES)
        assert diff.deltas[0].function == "lookup"

    def test_total_ratio(self):
        before = _collection({0: (50_000, 1)})
        after = _collection({0: (100_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES)
        assert diff.total_ratio == pytest.approx(2.0, rel=0.15)

    def test_render_contains_functions(self):
        before = _collection({0: (50_000, 1)})
        after = _collection({0: (60_000, 1)})
        out = diff_traces(before, after, NAMES, NAMES, label_before="v1", label_after="v2").render()
        assert "v1 -> v2" in out
        assert "insert" in out

    def test_noise_functions_dropped(self):
        before = _collection({0: (50_000, 1), 1: (600, 2)})
        after = _collection({0: (50_000, 1)})
        diff = diff_traces(before, after, NAMES, NAMES, min_accesses=100)
        # fn1 has ~60 sampled records (<100): dropped
        assert {d.function for d in diff.deltas} == {"insert"}


class TestCliDiff:
    def test_cli_diff(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        for variant, path in (("v1", a), ("v3", b)):
            main(
                ["trace", "--workload", f"minivite:{variant}", "--scale", "7", "-o", str(path)]
            )
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out
        assert "map.insert" in out


# -- N-way corpus diff ---------------------------------------------------------


def _fd(A_est=1000.0, dF=0.5, **over):
    """A full FootprintDiagnostics field dict for synthetic payloads."""
    d = dict(
        A_obs=1000, A_implied=1000, A_est=A_est, F=100, F_est=100.0,
        F_str=80, F_irr=20, dF=dF, dF_str=0.4, dF_irr=0.1, A_const_pct=0.0,
    )
    d.update(over)
    return d


def _cell(*, dF=0.5, dF_irr=0.1, F=100, F_est=100.0, A_est=1000.0,
          captures=50, survivals=50, counts=(0,), n_reuse=0, d_sum=0,
          functions=None):
    """A synthetic cell payload with just the fields the N-way diff reads."""
    return {
        "schema": 1, "module": "m", "n_events": 1000, "n_samples": 4,
        "n_loads_total": 4000, "rho": 4.0,
        "passes": {
            "diagnostics": {
                "A_obs": 1000, "A_implied": 1000, "A_est": A_est, "F": F,
                "F_est": F_est, "F_str": 80, "F_irr": 20, "dF": dF,
                "dF_str": 0.4, "dF_irr": dF_irr, "A_const_pct": 0.0,
            },
            "hotspot": [],
            "captures": {"captures": captures, "survivals": survivals},
            "reuse": {"counts": list(counts), "n_cold": 0, "n_reuse": n_reuse,
                      "d_sum": d_sum, "d_max": 0, "scope": "sample"},
        },
        "functions": functions if functions is not None else {"main": _fd()},
    }


def _corpus(cells, baseline="base", name="synthetic"):
    return {"schema": 1, "corpus": name, "baseline": baseline,
            "n_cells": len(cells), "cells": cells}


def _gate(**metrics):
    from repro.core.diff import Thresholds

    return Thresholds.from_mapping(metrics)


def _only_evidence(diff, cell, metric):
    (cd,) = [c for c in diff.cells if c.label == cell]
    (ev,) = [e for e in cd.evidence if e.metric == metric]
    return ev


class TestReuseQuantile:
    def test_empty_histogram_is_zero(self):
        from repro.core.diff import _reuse_quantile

        assert _reuse_quantile({"counts": [0, 0], "n_reuse": 0}, 0.5) == 0.0

    def test_bin_edges(self):
        from repro.core.diff import _reuse_quantile

        # bin 0 = D==0, bin 1 = [1,2), bin 2 = [2,4)
        h = {"counts": [5, 5, 10], "n_reuse": 20}
        assert _reuse_quantile(h, 0.25) == 0.0  # cum 5 >= 5 at bin 0
        assert _reuse_quantile(h, 0.50) == 1.0  # cum 10 >= 10 at bin 1
        assert _reuse_quantile(h, 0.90) == 2.0
        assert _reuse_quantile(h, 0.99) == 2.0


class TestThresholds:
    def test_from_file_toml_and_json(self, tmp_path):
        import json as _json

        from repro.core.diff import Thresholds

        t = tmp_path / "t.toml"
        t.write_text("[dF]\nmax_abs = 0.25\nmax_rel = 0.5\n", encoding="utf-8")
        th = Thresholds.from_file(t)
        assert th.get("dF").max_abs == 0.25 and th.get("dF").max_rel == 0.5
        j = tmp_path / "t.json"
        j.write_text(_json.dumps({"F": {"max_abs": 2}}), encoding="utf-8")
        assert Thresholds.from_file(j).get("F").max_abs == 2.0

    @pytest.mark.parametrize(
        "raw,match",
        [
            ({"bogus": {"max_abs": 1}}, "unknown metric 'bogus'"),
            ({"dF": 3}, "must be a table"),
            ({"dF": {"max_ab": 1}}, "unknown keys: max_ab"),
            ({"dF": {}}, "neither max_abs nor max_rel"),
            ({"dF": {"max_abs": -1}}, "finite and >= 0"),
            ({"dF": {"max_rel": float("nan")}}, "finite and >= 0"),
        ],
    )
    def test_bad_mappings_rejected(self, raw, match):
        from repro.core.diff import ThresholdError, Thresholds

        with pytest.raises(ThresholdError, match=match):
            Thresholds.from_mapping(raw)


class TestCorpusDiff:
    def test_single_cell_corpus_passes(self):
        from repro.core.diff import corpus_diff

        diff = corpus_diff(_corpus({"base": _cell()}), _gate(dF={"max_abs": 0.0}))
        assert diff.verdict == "pass"
        assert diff.cells == []
        assert "(baseline only — nothing to compare)" in diff.render()

    def test_baseline_missing_function_reads_as_new(self):
        from repro.core.diff import corpus_diff

        payload = _corpus({
            "base": _cell(functions={"main": _fd()}),
            "cand": _cell(functions={"main": _fd(), "helper": _fd(A_est=2000.0)}),
        })
        diff = corpus_diff(payload)
        (cd,) = diff.cells
        by_fn = {d.function: d for d in cd.deltas}
        assert by_fn["helper"].before is None
        assert by_fn["helper"].accesses_ratio == float("inf")
        assert "new" in diff.render()

    def test_zero_event_cells_pass_any_gate(self):
        from repro.core.diff import corpus_diff

        empty = _cell(dF=0.0, dF_irr=0.0, F=0, F_est=0.0, A_est=0.0,
                      captures=0, survivals=0, functions={})
        gate = _gate(**{m: {"max_abs": 0.0} for m in
                        ("dF", "dF_irr", "F", "F_est", "A_est",
                         "reuse_mean", "capture_rate")})
        diff = corpus_diff(_corpus({"base": empty, "cand": empty}), gate)
        assert diff.verdict == "pass"
        (cd,) = diff.cells
        assert cd.deltas == [] and cd.total_ratio == 1.0
        assert "cand: pass" in diff.render()

    def test_zero_baseline_gates_abs_only(self):
        from repro.core.diff import corpus_diff

        zero = _cell(dF=0.0, functions={})
        loud = _cell(dF=1.0, functions={})
        # relative bound cannot apply to a zero baseline: delta_rel is None
        diff = corpus_diff(
            _corpus({"base": zero, "cand": loud}), _gate(dF={"max_rel": 0.1})
        )
        ev = _only_evidence(diff, "cand", "dF")
        assert ev.delta_rel is None and not ev.regressed
        assert diff.verdict == "pass"
        # ... but an absolute bound still gates
        diff = corpus_diff(
            _corpus({"base": zero, "cand": loud}), _gate(dF={"max_abs": 0.5})
        )
        assert diff.verdict == "regressed"

    def test_exactly_at_threshold_is_a_pass(self):
        from repro.core.diff import corpus_diff

        payload = _corpus({"base": _cell(dF=0.5), "cand": _cell(dF=0.75)})
        # delta_abs = 0.25 and delta_rel = 0.5, both exactly representable
        at_abs = corpus_diff(payload, _gate(dF={"max_abs": 0.25}))
        assert _only_evidence(at_abs, "cand", "dF").delta_abs == 0.25
        assert at_abs.verdict == "pass"
        at_rel = corpus_diff(payload, _gate(dF={"max_rel": 0.5}))
        assert _only_evidence(at_rel, "cand", "dF").delta_rel == 0.5
        assert at_rel.verdict == "pass"
        # one ulp of headroom less and it regresses
        assert corpus_diff(payload, _gate(dF={"max_abs": 0.2})).verdict == "regressed"
        assert corpus_diff(payload, _gate(dF={"max_rel": 0.4})).verdict == "regressed"

    def test_capture_rate_regresses_downward(self):
        from repro.core.diff import corpus_diff

        base = _cell(captures=50, survivals=50)  # rate 0.5
        worse = _cell(captures=10, survivals=70)  # rate 0.125, delta 0.375
        better = _cell(captures=75, survivals=25)  # rate 0.75, delta -0.25
        gate = _gate(capture_rate={"max_abs": 0.25})
        assert corpus_diff(_corpus({"base": base, "cand": worse}), gate).verdict == "regressed"
        diff = corpus_diff(_corpus({"base": base, "cand": better}), gate)
        ev = _only_evidence(diff, "cand", "capture_rate")
        assert ev.delta_abs == -0.25  # improvement: negative in worse direction
        assert diff.verdict == "pass"

    def test_unknown_baseline_rejected(self):
        from repro.core.diff import ThresholdError, corpus_diff

        with pytest.raises(ThresholdError, match="names no corpus cell"):
            corpus_diff(_corpus({"base": _cell()}), baseline="zzz")

    def test_verdict_payload_shape(self):
        import json as _json

        from repro.core.diff import VERDICT_SCHEMA, corpus_diff

        payload = _corpus({"base": _cell(dF=0.5), "cand": _cell(dF=1.0)})
        v = corpus_diff(payload, _gate(dF={"max_abs": 0.25})).verdict_payload()
        _json.dumps(v)  # must be pure JSON
        assert v["schema"] == VERDICT_SCHEMA
        assert v["verdict"] == "regressed"
        assert v["thresholds"]["dF"] == {"max_abs": 0.25, "max_rel": None}
        cand = v["cells"]["cand"]
        assert cand["verdict"] == "regressed"
        ev = cand["metrics"]["dF"]
        assert ev["regressed"] is True and ev["delta_abs"] == 0.5
        # ungated metrics still report evidence, bounds None
        assert cand["metrics"]["F"]["regressed"] is False
        assert cand["metrics"]["F"]["max_abs"] is None

    def test_pairwise_table_is_the_shared_renderer(self):
        from repro.core.diagnostics import FootprintDiagnostics
        from repro.core.diff import TraceDiff, _function_deltas, corpus_diff

        fa = {"main": _fd(A_est=1000.0), "aux": _fd(A_est=500.0, dF=0.2)}
        fb = {"main": _fd(A_est=3000.0), "aux": _fd(A_est=500.0, dF=0.9)}
        payload = _corpus({"base": _cell(functions=fa), "cand": _cell(functions=fb)})
        cwa = {k: FootprintDiagnostics(**v) for k, v in fa.items()}
        cwb = {k: FootprintDiagnostics(**v) for k, v in fb.items()}
        pairwise = TraceDiff(
            label_before="base",
            label_after="cand",
            deltas=_function_deltas(cwa, cwb, 100),
            total_before=sum(d.A_est for d in cwa.values()),
            total_after=sum(d.A_est for d in cwb.values()),
        ).render(top=5)
        assert pairwise in corpus_diff(payload).render(top=5)


def _sweep_row(hit_ratio, predicted):
    return {
        "size_bytes": 4096, "line_bytes": 64, "ways": 1, "n_sets": 64,
        "n_accesses": 1000, "n_hits": int(1000 * hit_ratio),
        "hit_ratio": hit_ratio, "predicted_hits": int(1000 * predicted),
        "predicted_hit_ratio": predicted,
        "accesses_by_class": {}, "hits_by_class": {},
    }


class TestCacheMetrics:
    """cache.* metrics gate only cells that ran the sweep pass."""

    def _cell_with_sweep(self, ratios):
        c = _cell()
        c["passes"]["cache_sweep"] = [_sweep_row(h, p) for h, p in ratios]
        return c

    def test_absent_pass_skips_cache_metrics(self):
        from repro.core.diff import corpus_diff

        diff = corpus_diff(_corpus({"base": _cell(), "cand": _cell()}))
        metrics = {e.metric for e in diff.cells[0].evidence}
        assert not any(m.startswith("cache.") for m in metrics)

    def test_present_pass_yields_cache_evidence(self):
        from repro.core.diff import corpus_diff

        payload = _corpus({
            "base": self._cell_with_sweep([(0.5, 0.5), (0.9, 0.8)]),
            "cand": self._cell_with_sweep([(0.4, 0.4), (0.8, 0.5)]),
        })
        diff = corpus_diff(payload)
        assert _only_evidence(diff, "cand", "cache.hit_ratio_min").candidate == 0.4
        assert _only_evidence(diff, "cand", "cache.hit_ratio_mean").candidate == pytest.approx(0.6)
        assert _only_evidence(diff, "cand", "cache.pred_gap_max").candidate == pytest.approx(0.3)

    def test_hit_ratio_regresses_downward(self):
        from repro.core.diff import corpus_diff

        payload = _corpus({
            "base": self._cell_with_sweep([(0.9, 0.9)]),
            "cand": self._cell_with_sweep([(0.5, 0.5)]),
        })
        gated = corpus_diff(payload, _gate(**{"cache.hit_ratio_min": {"max_abs": 0.1}}))
        assert gated.verdict == "regressed"
        ok = corpus_diff(payload, _gate(**{"cache.hit_ratio_min": {"max_abs": 0.5}}))
        assert ok.verdict == "pass"

    def test_gating_without_the_pass_is_an_error(self):
        from repro.core.diff import ThresholdError, corpus_diff

        payload = _corpus({"base": _cell(), "cand": _cell()})
        with pytest.raises(ThresholdError, match="cache_sweep.*not run"):
            corpus_diff(payload, _gate(**{"cache.hit_ratio_min": {"max_abs": 0.1}}))


class TestRenderTruncationNote:
    def _diff_with(self, n_functions):
        from repro.core.diagnostics import FootprintDiagnostics
        from repro.core.diff import TraceDiff, _function_deltas

        fns = {f"fn{i}": FootprintDiagnostics(**_fd(A_est=1000.0 * (i + 1)))
               for i in range(n_functions)}
        moved = {k: FootprintDiagnostics(**_fd(A_est=v.A_est * 2))
                 for k, v in fns.items()}
        return TraceDiff(
            label_before="a", label_after="b",
            deltas=_function_deltas(fns, moved, 100),
            total_before=1.0, total_after=1.0,
        )

    def test_truncated_render_counts_omissions(self):
        out = self._diff_with(5).render(top=2)
        assert "(3 of 5 function rows omitted; raise --top to see all)" in out

    def test_untruncated_render_has_no_note(self):
        assert "omitted" not in self._diff_with(5).render(top=5)
        assert "omitted" not in self._diff_with(2).render(top=12)
