"""Tests for the execution interval tree and access-interval metrics."""

import numpy as np
import pytest

from repro.core.interval_tree import ExecutionIntervalTree, access_interval_metrics
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig


def _collection(n=4000, period=500, cap=50):
    ev = make_events(ip=1, addr=np.arange(n) % 256, cls=2, fn=(np.arange(n) // (n // 2)))
    cfg = SamplingConfig(period=period, buffer_capacity=cap, fill_mean=1.0, fill_jitter=0.0)
    return collect_sampled_trace(ev, config=cfg)


class TestBuild:
    def test_leaves_are_samples(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0)
        assert len(tree.samples) == col.n_samples
        assert all(n.exact for n in tree.samples)

    def test_root_spans_everything(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0)
        assert tree.root.t_start == tree.samples[0].t_start
        assert tree.root.t_end == tree.samples[-1].t_end
        assert not tree.root.exact

    def test_merged_metrics_are_estimates(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0)
        # root sees all samples; estimated accesses scale with rho
        assert tree.root.diagnostics.A_est == pytest.approx(
            10.0 * len(col.events)
        )

    def test_function_leaf_nodes(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0, fn_names={0: "a", 1: "b"})
        fns = {c.function for s in tree.samples for c in s.children}
        assert fns <= {"a", "b"}
        assert len(fns) >= 1

    def test_intra_splits(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0, intra_splits=1)
        sample = tree.samples[0]
        assert len(sample.children) == 2
        assert all(c.level == -1 for c in sample.children)

    def test_empty_collection_rejected(self):
        ev = make_events(ip=1, addr=np.arange(0))
        cfg = SamplingConfig(period=10, buffer_capacity=4)
        col = collect_sampled_trace(ev, config=cfg)
        with pytest.raises(ValueError):
            ExecutionIntervalTree.build(col, rho=1.0)


class TestZoom:
    def test_zoom_path_descends(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0)
        path = tree.zoom()
        assert path[0] is tree.root
        assert len(path) >= 2
        for parent, child in zip(path, path[1:]):
            assert child in parent.children

    def test_max_depth(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0)
        assert len(tree.zoom(max_depth=1)) == 2

    def test_custom_criterion(self):
        col = _collection()
        tree = ExecutionIntervalTree.build(col, rho=10.0)
        path = tree.zoom(criterion=lambda n: -n.t_start)  # always leftmost
        assert path[1] is tree.root.children[0]


class TestAccessIntervals:
    def test_row_count_and_fields(self):
        ev = make_events(ip=1, addr=np.arange(800), cls=2)
        rows = access_interval_metrics(ev, 8)
        assert len(rows) == 8
        assert {"interval", "F", "dF", "D", "A"} <= set(rows[0])

    def test_equal_record_counts(self):
        ev = make_events(ip=1, addr=np.arange(100), cls=2)
        rows = access_interval_metrics(ev, 4)
        assert all(r["A_obs"] == 25 for r in rows)

    def test_locality_shift_detected(self):
        # first half streams, second half hammers one block
        addr = np.concatenate([np.arange(500) * 64, np.zeros(500)])
        ev = make_events(ip=1, addr=addr, cls=2)
        rows = access_interval_metrics(ev, 2)
        assert rows[0]["dF"] > rows[1]["dF"]

    def test_bad_args(self):
        ev = make_events(ip=1, addr=np.arange(4))
        with pytest.raises(ValueError):
            access_interval_metrics(ev, 0)
