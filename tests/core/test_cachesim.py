"""Tests for the LRU cache model, including the D-vs-hit cross-check."""

import numpy as np
import pytest

from repro.core.cachesim import CacheConfig, simulate_cache
from repro.core.reuse import reuse_distances
from repro.trace.event import LoadClass, make_events


class TestConfig:
    def test_n_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=8)
        assert cfg.n_sets == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=8)


class TestSimulation:
    def test_repeated_access_hits(self):
        ev = make_events(ip=1, addr=np.zeros(100), cls=2)
        stats = simulate_cache(ev)
        assert stats.n_hits == 99

    def test_streaming_misses(self):
        ev = make_events(ip=1, addr=np.arange(10_000) * 64, cls=1)
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        assert stats.hit_ratio == 0.0

    def test_working_set_fits(self):
        # 16 lines looped, cache holds 64 lines -> all hits after warmup
        addr = np.tile(np.arange(16) * 64, 100)
        ev = make_events(ip=1, addr=addr, cls=1)
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        assert stats.n_hits == len(addr) - 16

    def test_capacity_eviction(self):
        # loop over 2x the cache capacity -> LRU always evicts before reuse
        n_lines = 128
        addr = np.tile(np.arange(n_lines) * 64, 10)
        ev = make_events(ip=1, addr=addr, cls=1)
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=64))
        assert stats.hit_ratio == 0.0

    def test_per_class_accounting(self):
        ev = make_events(ip=1, addr=[0, 0, 64, 64], cls=[1, 1, 2, 2])
        stats = simulate_cache(ev)
        assert stats.accesses_by_class[LoadClass.STRIDED] == 2
        assert stats.class_hit_ratio(LoadClass.STRIDED) == 0.5
        assert stats.class_hit_ratio(LoadClass.IRREGULAR) == 0.5

    def test_suppressed_constants_always_hit(self):
        ev = make_events(ip=1, addr=[0], cls=1, n_const=10)
        stats = simulate_cache(ev)
        assert stats.n_accesses == 11
        assert stats.class_hit_ratio(LoadClass.CONSTANT) == 1.0

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            simulate_cache(np.zeros(4))


class TestPrefetcher:
    def test_streaming_hits_with_prefetch(self):
        ev = make_events(ip=1, addr=np.arange(10_000) * 8, cls=1)
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, ways=4)
        cold = simulate_cache(ev, cfg)
        warm = simulate_cache(
            ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True)
        )
        assert warm.hit_ratio > cold.hit_ratio
        assert warm.hit_ratio > 0.95

    def test_prefetch_does_not_help_random(self, rng):
        ev = make_events(ip=1, addr=rng.integers(0, 1 << 20, 5000) * 64, cls=2)
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True)
        assert simulate_cache(ev, cfg).hit_ratio < 0.05


class TestDistancePredictsHits:
    def test_fully_associative_matches_reuse_distance(self, make_rng):
        """An access hits a fully-associative LRU of capacity C iff its
        spatio-temporal reuse distance (in lines) is < C."""
        rng = make_rng("fa-lru")
        addr = rng.integers(0, 256, 4000) * 64
        ev = make_events(ip=1, addr=addr, cls=2)
        ways = 32
        cfg = CacheConfig(size_bytes=ways * 64, line_bytes=64, ways=ways)  # 1 set
        stats = simulate_cache(ev, cfg)
        d = reuse_distances(ev, block=64)
        predicted_hits = int(((d >= 0) & (d < ways)).sum())
        assert stats.n_hits == predicted_hits

    def test_hit_ratio_monotone_in_size(self, rng):
        ev = make_events(ip=1, addr=rng.integers(0, 4096, 5000) * 64, cls=2)
        ratios = [
            simulate_cache(ev, CacheConfig(size_bytes=s, line_bytes=64, ways=8)).hit_ratio
            for s in (8 * 1024, 32 * 1024, 128 * 1024)
        ]
        assert ratios[0] <= ratios[1] <= ratios[2]


# -- kernel equivalence -------------------------------------------------------


class TestCacheKernelEquivalence:
    """The set-local stack-distance kernel matches the reference loop."""

    def _events(self, rng, n=2500):
        return make_events(
            ip=1,
            addr=rng.integers(0, 1 << 14, n) * 8,
            cls=rng.integers(0, 3, n).astype(np.uint8),
            n_const=rng.choice([0, 0, 3], n).astype(np.uint16),
        )

    @pytest.mark.parametrize("ways,sets", [(1, 64), (8, 64), (4, 1), (16, 512)])
    def test_vector_equals_python(self, make_rng, ways, sets):
        rng = make_rng(f"cache-eq-{ways}-{sets}")
        ev = self._events(rng)
        cfg = CacheConfig(size_bytes=ways * sets * 64, line_bytes=64, ways=ways)
        a = simulate_cache(ev, cfg, kernel="vector")
        b = simulate_cache(ev, cfg, kernel="python")
        # repr covers every field including the class-count dict order
        assert repr(a) == repr(b)

    def test_hierarchy_vector_equals_python(self, make_rng):
        from repro.core.cachesim import HierarchyConfig, simulate_hierarchy

        rng = make_rng("hier-eq")
        ev = self._events(rng)
        cfg = HierarchyConfig(
            l1=CacheConfig(
                size_bytes=32 * 1024, line_bytes=64, ways=8, prefetch_next_line=False
            ),
            l2=CacheConfig(
                size_bytes=256 * 1024, line_bytes=64, ways=8, prefetch_next_line=False
            ),
        )
        a = simulate_hierarchy(ev, cfg, kernel="vector")
        b = simulate_hierarchy(ev, cfg, kernel="python")
        assert repr(a) == repr(b)

    def test_vector_rejects_prefetch(self):
        ev = make_events(ip=1, addr=[0, 64], cls=2)
        cfg = CacheConfig(
            size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True
        )
        with pytest.raises(ValueError, match="prefetch"):
            simulate_cache(ev, cfg, kernel="vector")

    def test_auto_falls_back_for_prefetch(self):
        """auto must pick the python loop when prefetching is on — and
        still produce a result (no exception)."""
        ev = make_events(ip=1, addr=[0, 64, 0], cls=2)
        cfg = CacheConfig(
            size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True
        )
        stats = simulate_cache(ev, cfg, kernel="auto")
        assert stats.n_accesses == 3

    def test_env_default(self, monkeypatch):
        from repro.core.cachesim import default_cache_kernel

        monkeypatch.setenv("MEMGAZE_CACHE_KERNEL", "python")
        assert default_cache_kernel() == "python"
        monkeypatch.delenv("MEMGAZE_CACHE_KERNEL")
        assert default_cache_kernel() == "auto"
        monkeypatch.setenv("MEMGAZE_CACHE_KERNEL", "bogus")
        with pytest.raises(ValueError, match="MEMGAZE_CACHE_KERNEL"):
            default_cache_kernel()
