"""Tests for the LRU cache model, including the D-vs-hit cross-check."""

import numpy as np
import pytest

from repro.core.cachesim import CacheConfig, simulate_cache
from repro.core.reuse import reuse_distances
from repro.trace.event import LoadClass, make_events


class TestConfig:
    def test_n_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=8)
        assert cfg.n_sets == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=8)


class TestSimulation:
    def test_repeated_access_hits(self):
        ev = make_events(ip=1, addr=np.zeros(100), cls=2)
        stats = simulate_cache(ev)
        assert stats.n_hits == 99

    def test_streaming_misses(self):
        ev = make_events(ip=1, addr=np.arange(10_000) * 64, cls=1)
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        assert stats.hit_ratio == 0.0

    def test_working_set_fits(self):
        # 16 lines looped, cache holds 64 lines -> all hits after warmup
        addr = np.tile(np.arange(16) * 64, 100)
        ev = make_events(ip=1, addr=addr, cls=1)
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        assert stats.n_hits == len(addr) - 16

    def test_capacity_eviction(self):
        # loop over 2x the cache capacity -> LRU always evicts before reuse
        n_lines = 128
        addr = np.tile(np.arange(n_lines) * 64, 10)
        ev = make_events(ip=1, addr=addr, cls=1)
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=64))
        assert stats.hit_ratio == 0.0

    def test_per_class_accounting(self):
        ev = make_events(ip=1, addr=[0, 0, 64, 64], cls=[1, 1, 2, 2])
        stats = simulate_cache(ev)
        assert stats.accesses_by_class[LoadClass.STRIDED] == 2
        assert stats.class_hit_ratio(LoadClass.STRIDED) == 0.5
        assert stats.class_hit_ratio(LoadClass.IRREGULAR) == 0.5

    def test_suppressed_constants_always_hit(self):
        ev = make_events(ip=1, addr=[0], cls=1, n_const=10)
        stats = simulate_cache(ev)
        assert stats.n_accesses == 11
        assert stats.class_hit_ratio(LoadClass.CONSTANT) == 1.0

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            simulate_cache(np.zeros(4))


class TestPrefetcher:
    def test_streaming_hits_with_prefetch(self):
        ev = make_events(ip=1, addr=np.arange(10_000) * 8, cls=1)
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, ways=4)
        cold = simulate_cache(ev, cfg)
        warm = simulate_cache(
            ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True)
        )
        assert warm.hit_ratio > cold.hit_ratio
        assert warm.hit_ratio > 0.95

    def test_prefetch_does_not_help_random(self, rng):
        ev = make_events(ip=1, addr=rng.integers(0, 1 << 20, 5000) * 64, cls=2)
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True)
        assert simulate_cache(ev, cfg).hit_ratio < 0.05


class TestDistancePredictsHits:
    def test_fully_associative_matches_reuse_distance(self, make_rng):
        """An access hits a fully-associative LRU of capacity C iff its
        spatio-temporal reuse distance (in lines) is < C."""
        rng = make_rng("fa-lru")
        addr = rng.integers(0, 256, 4000) * 64
        ev = make_events(ip=1, addr=addr, cls=2)
        ways = 32
        cfg = CacheConfig(size_bytes=ways * 64, line_bytes=64, ways=ways)  # 1 set
        stats = simulate_cache(ev, cfg)
        d = reuse_distances(ev, block=64)
        predicted_hits = int(((d >= 0) & (d < ways)).sum())
        assert stats.n_hits == predicted_hits

    def test_hit_ratio_monotone_in_size(self, rng):
        ev = make_events(ip=1, addr=rng.integers(0, 4096, 5000) * 64, cls=2)
        ratios = [
            simulate_cache(ev, CacheConfig(size_bytes=s, line_bytes=64, ways=8)).hit_ratio
            for s in (8 * 1024, 32 * 1024, 128 * 1024)
        ]
        assert ratios[0] <= ratios[1] <= ratios[2]


# -- kernel equivalence -------------------------------------------------------


class TestCacheKernelEquivalence:
    """The set-local stack-distance kernel matches the reference loop."""

    def _events(self, rng, n=2500):
        return make_events(
            ip=1,
            addr=rng.integers(0, 1 << 14, n) * 8,
            cls=rng.integers(0, 3, n).astype(np.uint8),
            n_const=rng.choice([0, 0, 3], n).astype(np.uint16),
        )

    @pytest.mark.parametrize("ways,sets", [(1, 64), (8, 64), (4, 1), (16, 512)])
    def test_vector_equals_python(self, make_rng, ways, sets):
        rng = make_rng(f"cache-eq-{ways}-{sets}")
        ev = self._events(rng)
        cfg = CacheConfig(size_bytes=ways * sets * 64, line_bytes=64, ways=ways)
        a = simulate_cache(ev, cfg, kernel="vector")
        b = simulate_cache(ev, cfg, kernel="python")
        # repr covers every field including the class-count dict order
        assert repr(a) == repr(b)

    def test_hierarchy_vector_equals_python(self, make_rng):
        from repro.core.cachesim import HierarchyConfig, simulate_hierarchy

        rng = make_rng("hier-eq")
        ev = self._events(rng)
        cfg = HierarchyConfig(
            l1=CacheConfig(
                size_bytes=32 * 1024, line_bytes=64, ways=8, prefetch_next_line=False
            ),
            l2=CacheConfig(
                size_bytes=256 * 1024, line_bytes=64, ways=8, prefetch_next_line=False
            ),
        )
        a = simulate_hierarchy(ev, cfg, kernel="vector")
        b = simulate_hierarchy(ev, cfg, kernel="python")
        assert repr(a) == repr(b)

    def test_vector_rejects_prefetch(self):
        ev = make_events(ip=1, addr=[0, 64], cls=2)
        cfg = CacheConfig(
            size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True
        )
        with pytest.raises(ValueError, match="prefetch"):
            simulate_cache(ev, cfg, kernel="vector")

    def test_auto_falls_back_for_prefetch(self):
        """auto must pick the python loop when prefetching is on — and
        still produce a result (no exception)."""
        ev = make_events(ip=1, addr=[0, 64, 0], cls=2)
        cfg = CacheConfig(
            size_bytes=4096, line_bytes=64, ways=4, prefetch_next_line=True
        )
        stats = simulate_cache(ev, cfg, kernel="auto")
        assert stats.n_accesses == 3

    def test_env_default(self, monkeypatch):
        from repro.core.cachesim import default_cache_kernel

        monkeypatch.setenv("MEMGAZE_CACHE_KERNEL", "python")
        assert default_cache_kernel() == "python"
        monkeypatch.delenv("MEMGAZE_CACHE_KERNEL")
        assert default_cache_kernel() == "auto"
        monkeypatch.setenv("MEMGAZE_CACHE_KERNEL", "bogus")
        with pytest.raises(ValueError, match="MEMGAZE_CACHE_KERNEL"):
            default_cache_kernel()


# -- config-time kernel validation (hoisted out of the scan) ------------------


class TestConfigKernelField:
    def test_unknown_kernel_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown cache kernel"):
            CacheConfig(size_bytes=4096, line_bytes=64, ways=4, kernel="bogus")

    def test_vector_plus_prefetch_rejected_at_construction(self):
        """The incompatibility fails when the config is *built*, not on
        the first simulation call deep inside a worker's scan."""
        with pytest.raises(ValueError, match="prefetch"):
            CacheConfig(
                size_bytes=4096, line_bytes=64, ways=4,
                prefetch_next_line=True, kernel="vector",
            )

    def test_config_kernel_drives_simulation(self, make_rng):
        rng = make_rng("cfg-kernel")
        ev = make_events(ip=1, addr=rng.integers(0, 1 << 12, 500) * 8, cls=2)
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, ways=4, kernel="python")
        ref = simulate_cache(ev, cfg, kernel="python")
        assert repr(simulate_cache(ev, cfg)) == repr(ref)

    def test_sweep_schedule_rejects_prefetch(self):
        from repro.core.passes import schedule_passes

        with pytest.raises(ValueError, match="prefetch"):
            schedule_passes([("cache_sweep", {"prefetch": True})])

    def test_sweep_schedule_rejects_bad_line(self):
        from repro.core.passes import schedule_passes

        with pytest.raises(ValueError, match="power of two"):
            schedule_passes([("cache_sweep", {"lines": (48,)})])


# -- fused sweep equivalence --------------------------------------------------


class TestSweepEquivalence:
    """One fused sweep scan == N independent ``simulate_cache`` runs.

    Bit-identical, per configuration, at every worker count and chunk
    size — the mergeable partial must be exact, not approximate.
    """

    def _events(self, rng, n=2500):
        return make_events(
            ip=1,
            addr=rng.integers(0, 1 << 14, n) * 8,
            cls=rng.integers(0, 3, n).astype(np.uint8),
            n_const=rng.choice([0, 0, 3], n).astype(np.uint16),
        )

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("chunk_size", [17, 257, 5000])
    def test_fused_sweep_matches_independent_runs(self, make_rng, workers, chunk_size):
        from repro.core.cachesim import sweep_configs
        from repro.core.parallel import ParallelEngine

        rng = make_rng("sweep-eq")
        ev = self._events(rng)
        # one sample per event so chunk_size controls sharding exactly
        sid = np.arange(len(ev), dtype=np.int32)
        with ParallelEngine(workers=workers, chunk_size=chunk_size) as eng:
            rows = eng.run_passes(ev, ["cache_sweep"], sample_id=sid)["cache_sweep"]
        grid = sweep_configs()
        assert len(rows) == len(grid) == 8
        for row, cfg in zip(rows, grid):
            ref = simulate_cache(ev, cfg)
            assert (row.size_bytes, row.line_bytes, row.ways, row.n_sets) == (
                cfg.size_bytes, cfg.line_bytes, cfg.ways, cfg.n_sets
            )
            assert row.n_accesses == ref.n_accesses
            assert row.n_hits == ref.n_hits
            assert row.hit_ratio == ref.hit_ratio  # same expression, bit-identical
            assert row.accesses_by_class == {
                k.name: v for k, v in ref.accesses_by_class.items() if v
            }
            assert row.hits_by_class == {
                k.name: v for k, v in ref.hits_by_class.items() if v
            }
            # the prediction column is the paper's reuse-distance model:
            # identical to a fully-associative LRU of the same capacity
            fa = simulate_cache(
                ev,
                CacheConfig(
                    size_bytes=cfg.size_bytes,
                    line_bytes=cfg.line_bytes,
                    ways=cfg.size_bytes // cfg.line_bytes,
                ),
            )
            assert row.predicted_hits == fa.n_hits
            assert row.predicted_hit_ratio == fa.hit_ratio

    def test_explicit_config_triples(self, make_rng):
        from repro.core.cachesim import sweep_configs

        rng = make_rng("sweep-triples")
        ev = self._events(rng, n=800)
        grid = sweep_configs(configs=[(8192, 64, 2), (65536, 128, 8)])
        from repro.core.parallel import ParallelEngine

        with ParallelEngine(workers=1, chunk_size=257) as eng:
            rows = eng.run_passes(
                ev,
                [("cache_sweep", {"configs": [(8192, 64, 2), (65536, 128, 8)]})],
                sample_id=np.arange(len(ev), dtype=np.int32),
            )["cache_sweep"]
        for row, cfg in zip(rows, grid):
            ref = simulate_cache(ev, cfg)
            assert row.n_hits == ref.n_hits and row.n_accesses == ref.n_accesses

    def test_sweep_configs_rejects_duplicates_and_empty(self):
        from repro.core.cachesim import sweep_configs

        with pytest.raises(ValueError):
            sweep_configs(configs=[(8192, 64, 2), (8192, 64, 2)])
        with pytest.raises(ValueError):
            sweep_configs(ways=())
