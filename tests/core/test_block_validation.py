"""Block-size validation must be uniform across the analysis layer.

Every entry point taking an access-block granularity rejects
non-power-of-two values with the *same* exception type and message, so
callers can rely on one contract (and one error string) everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heatmap import access_heatmap
from repro.core.metrics import block_ids, captures_survivals, footprint
from repro.core.parallel import CapturesPartial, DiagnosticsPartial, ParallelEngine
from repro.core.reuse import reuse_distances, reuse_histogram, reuse_intervals
from repro.trace.event import make_events

BAD_BLOCKS = [0, -1, -64, 3, 6, 48, 100]


def _ev():
    return make_events(ip=1, addr=np.arange(10, dtype=np.uint64))


ENTRY_POINTS = [
    pytest.param(lambda ev, b: footprint(ev, b), id="metrics.footprint"),
    pytest.param(lambda ev, b: block_ids(ev, b), id="metrics.block_ids"),
    pytest.param(
        lambda ev, b: captures_survivals(ev, b), id="metrics.captures_survivals"
    ),
    pytest.param(lambda ev, b: reuse_intervals(ev, b), id="reuse.reuse_intervals"),
    pytest.param(lambda ev, b: reuse_distances(ev, b), id="reuse.reuse_distances"),
    pytest.param(lambda ev, b: reuse_histogram(ev, b), id="reuse.reuse_histogram"),
    pytest.param(
        lambda ev, b: access_heatmap(ev, 0, 4096, access_block=b),
        id="heatmap.access_heatmap",
    ),
    pytest.param(
        lambda ev, b: DiagnosticsPartial.from_events(ev, b),
        id="parallel.DiagnosticsPartial",
    ),
    pytest.param(
        lambda ev, b: CapturesPartial.from_events(ev, b),
        id="parallel.CapturesPartial",
    ),
]


@pytest.mark.parametrize("block", BAD_BLOCKS)
@pytest.mark.parametrize("call", ENTRY_POINTS)
def test_rejects_with_uniform_message(call, block):
    with pytest.raises(ValueError) as err:
        call(_ev(), block)
    assert str(err.value) == (
        f"block must be a positive power of two, got {block}"
    )


@pytest.mark.parametrize("call", ENTRY_POINTS)
def test_accepts_powers_of_two(call):
    for block in (1, 2, 64, 4096):
        call(_ev(), block)  # must not raise


def test_engine_heatmap_uses_same_contract():
    with ParallelEngine(workers=1) as eng:
        with pytest.raises(ValueError) as err:
            eng.heatmap(_ev(), 0, 4096, access_block=48)
    assert str(err.value) == "block must be a positive power of two, got 48"
