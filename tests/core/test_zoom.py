"""Tests for the location zoom tree."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.zoom import ZoomConfig, location_zoom, zoom_leaves
from repro.trace.event import make_events


def _two_region_stream(n=8000):
    """Half the accesses sweep region A (64 KiB), half hammer region B (4 KiB)."""
    rng = derive_rng(0, "zoom-two-region")
    a = 0x10_0000 + (np.arange(n // 2) * 8) % 65536
    b = 0x40_0000 + rng.integers(0, 512, n // 2) * 8
    addr = np.empty(n, dtype=np.uint64)
    addr[0::2] = a
    addr[1::2] = b
    cls = np.where(np.arange(n) % 2 == 0, 1, 2)
    fn = np.where(np.arange(n) % 2 == 0, 0, 1)
    return make_events(ip=1, addr=addr, cls=cls, fn=fn)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZoomConfig(page_size=100)
        with pytest.raises(ValueError):
            ZoomConfig(hot_threshold=0.0)
        with pytest.raises(ValueError):
            ZoomConfig(shrink=1)
        with pytest.raises(ValueError):
            ZoomConfig(max_depth=0)


class TestZoom:
    def test_finds_both_hot_regions(self):
        root = location_zoom(_two_region_stream())
        leaves = zoom_leaves(root, min_pct=10)
        bases = {l.base & ~0xFFFFF for l in leaves}
        assert 0x10_0000 in {b & 0xFF_FFFF | 0x10_0000 for b in bases} or any(
            0x10_0000 <= l.base < 0x12_0000 for l in leaves
        )
        assert any(0x40_0000 <= l.base < 0x42_0000 for l in leaves)

    def test_hotness_percentages_sum_sensibly(self):
        root = location_zoom(_two_region_stream())
        leaves = zoom_leaves(root, min_pct=10)
        assert sum(l.pct_of_total for l in leaves) <= 100.0 + 1e-6
        assert all(0 < l.pct_of_total <= 100 for l in leaves)

    def test_irregular_region_has_higher_d(self):
        root = location_zoom(_two_region_stream())
        leaves = zoom_leaves(root, min_pct=10)
        strided_leaf = min(leaves, key=lambda l: l.base)
        irregular_leaf = max(leaves, key=lambda l: l.base)
        assert irregular_leaf.D_mean > strided_leaf.D_mean

    def test_leaf_block_stats(self):
        cfg = ZoomConfig(access_block=64)
        root = location_zoom(_two_region_stream(), cfg)
        for leaf in zoom_leaves(root, min_pct=10):
            assert leaf.n_blocks == max(1, leaf.size // 64)
            assert leaf.accesses_per_block == pytest.approx(
                leaf.n_accesses / leaf.n_blocks
            )

    def test_function_attribution(self):
        root = location_zoom(
            _two_region_stream(), fn_names={0: "sweep", 1: "hammer"}
        )
        leaves = zoom_leaves(root, min_pct=10)
        irregular_leaf = max(leaves, key=lambda l: l.base)
        assert irregular_leaf.functions.most_common(1)[0][0] == "hammer"

    def test_constants_ignored(self):
        ev = make_events(ip=1, addr=[100, 100, 100], cls=0)
        root = location_zoom(ev)
        assert root.n_accesses == 0

    def test_cold_gap_kept_inside_contiguous_region(self):
        """The contiguity rule: one object with a cold middle stays one leaf."""
        addr = np.concatenate(
            [
                0x10_0000 + np.tile(np.arange(0, 4096, 8), 20),  # hot first page
                0x10_2000 + np.tile(np.arange(0, 4096, 8), 20),  # hot third page
                0x10_1000 + np.arange(0, 4096, 8),  # middle page touched once/line
            ]
        )
        ev = make_events(ip=1, addr=np.sort(addr), cls=1)
        cfg = ZoomConfig(page_size=4096, min_region_bytes=4096)
        leaves = zoom_leaves(location_zoom(ev, cfg))
        spans = [(l.base, l.end) for l in leaves if l.pct_of_total > 50]
        assert any(hi - lo >= 3 * 4096 for lo, hi in spans)

    def test_depth_bounded(self):
        cfg = ZoomConfig(max_depth=2)
        root = location_zoom(_two_region_stream(), cfg)
        stack, max_depth = [root], 0
        while stack:
            n = stack.pop()
            max_depth = max(max_depth, n.depth)
            stack.extend(n.children)
        assert max_depth <= 2

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            location_zoom(np.zeros(4))
