"""Corpus spec parsing and validation (``repro.core.corpus``)."""

import json

import numpy as np
import pytest

from repro.core.corpus import CellSpec, CorpusSpec, CorpusSpecError
from repro.trace.event import LoadClass, make_events
from repro.trace.tracefile import TraceMeta, write_trace


def _write_archive(path, n=512, seed=0, module=None):
    rng = np.random.default_rng(1000 + seed)
    events = make_events(
        ip=rng.integers(0, 1 << 20, n),
        addr=rng.integers(0, 1 << 30, n),
        cls=np.full(n, int(LoadClass.STRIDED), dtype=np.uint8),
    )
    sample_id = np.repeat(np.arange(max(1, n // 128), dtype=np.int32), 128)[:n]
    meta = TraceMeta(
        module=module or path.stem,
        kind="sampled",
        period=997,
        buffer_capacity=128,
        n_loads_total=n * 4,
        n_samples=int(sample_id[-1]) + 1 if n else 1,
        extra={"fn_names": {}, "mode": "ldlat"},
    )
    write_trace(path, events, meta, sample_id)
    return path


class TestFromDirectory:
    def test_labels_and_default_baseline(self, tmp_path):
        for stem in ("v2", "v1", "pr"):
            _write_archive(tmp_path / f"{stem}.npz")
        spec = CorpusSpec.from_directory(tmp_path)
        assert [c.label for c in spec.cells] == ["pr", "v1", "v2"]  # sorted
        assert spec.baseline == "pr"
        assert spec.name == tmp_path.name

    def test_baseline_override(self, tmp_path):
        for stem in ("a", "b"):
            _write_archive(tmp_path / f"{stem}.npz")
        spec = CorpusSpec.from_directory(tmp_path, baseline="b")
        assert spec.baseline == "b"
        assert [c.label for c in spec.candidates] == ["a"]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(CorpusSpecError, match="no \\*.npz"):
            CorpusSpec.from_directory(tmp_path)


class TestFromFile:
    def _spec_toml(self, tmp_path, body):
        p = tmp_path / "corpus.toml"
        p.write_text(body, encoding="utf-8")
        return p

    def test_toml_cells_params_and_relative_paths(self, tmp_path):
        (tmp_path / "traces").mkdir()
        _write_archive(tmp_path / "traces" / "base.npz")
        _write_archive(tmp_path / "traces" / "cand.npz")
        p = self._spec_toml(
            tmp_path,
            'name = "nightly"\nbaseline = "base"\n\n'
            '[[cell]]\nlabel = "base"\ntrace = "traces/base.npz"\n\n'
            '[[cell]]\ntrace = "traces/cand.npz"\nblock = 4\nreuse_block = 128\n',
        )
        spec = CorpusSpec.from_file(p)
        assert spec.name == "nightly"
        assert spec.baseline == "base"
        cand = spec.cell("cand")  # label defaults to the trace stem
        assert cand.block == 4 and cand.reuse_block == 128
        assert cand.trace == tmp_path / "traces" / "cand.npz"
        assert cand.cache_sweep is False  # opt-in, off by default

    def test_cache_sweep_cell_key(self, tmp_path):
        _write_archive(tmp_path / "a.npz")
        p = self._spec_toml(
            tmp_path, '[[cell]]\ntrace = "a.npz"\ncache_sweep = true\n'
        )
        assert CorpusSpec.from_file(p).cell("a").cache_sweep is True

    def test_json_spec(self, tmp_path):
        _write_archive(tmp_path / "a.npz")
        p = tmp_path / "corpus.json"
        p.write_text(json.dumps({"cell": [{"trace": "a.npz"}]}), encoding="utf-8")
        spec = CorpusSpec.from_file(p)
        assert spec.baseline == "a"
        assert spec.name == "corpus"  # file stem

    def test_kwarg_baseline_beats_file(self, tmp_path):
        _write_archive(tmp_path / "a.npz")
        _write_archive(tmp_path / "b.npz")
        p = self._spec_toml(
            tmp_path,
            'baseline = "a"\n[[cell]]\ntrace = "a.npz"\n[[cell]]\ntrace = "b.npz"\n',
        )
        assert CorpusSpec.from_file(p, baseline="b").baseline == "b"

    @pytest.mark.parametrize(
        "body,match",
        [
            ("", "no \\[\\[cell\\]\\]"),
            ("[[cell]]\nlabel = 'x'\n", "no 'trace'"),
            ("[[cell]]\ntrace = 'a.npz'\nblok = 2\n", "unknown keys: blok"),
            ("nmae = 'x'\n[[cell]]\ntrace = 'a.npz'\n", "unknown keys: nmae"),
            ("cell = 3\n", "array of tables"),
            ("x ==", "invalid TOML"),
        ],
    )
    def test_malformed_specs_rejected(self, tmp_path, body, match):
        _write_archive(tmp_path / "a.npz")
        p = self._spec_toml(tmp_path, body)
        with pytest.raises(CorpusSpecError, match=match):
            CorpusSpec.from_file(p)

    def test_invalid_json_rejected(self, tmp_path):
        p = tmp_path / "corpus.json"
        p.write_text("{nope", encoding="utf-8")
        with pytest.raises(CorpusSpecError, match="invalid JSON"):
            CorpusSpec.from_file(p)


class TestValidation:
    def test_duplicate_labels_rejected(self, tmp_path):
        a = _write_archive(tmp_path / "a.npz")
        with pytest.raises(CorpusSpecError, match="duplicate cell labels: x"):
            CorpusSpec(
                cells=(CellSpec("x", a), CellSpec("x", a)), baseline="x"
            )

    def test_unknown_baseline_rejected(self, tmp_path):
        a = _write_archive(tmp_path / "a.npz")
        with pytest.raises(CorpusSpecError, match="baseline 'z' names no cell"):
            CorpusSpec(cells=(CellSpec("a", a),), baseline="z")

    def test_missing_trace_rejected(self, tmp_path):
        with pytest.raises(CorpusSpecError, match="not found"):
            CorpusSpec(
                cells=(CellSpec("a", tmp_path / "gone.npz"),), baseline="a"
            )

    def test_no_cells_rejected(self):
        with pytest.raises(CorpusSpecError, match="no cells"):
            CorpusSpec(cells=(), baseline="a")

    def test_load_dispatch(self, tmp_path):
        _write_archive(tmp_path / "a.npz")
        assert CorpusSpec.load(tmp_path).baseline == "a"
        spec_file = tmp_path / "c.toml"
        spec_file.write_text('[[cell]]\ntrace = "a.npz"\n', encoding="utf-8")
        assert CorpusSpec.load(spec_file).baseline == "a"
        with pytest.raises(CorpusSpecError, match="not found"):
            CorpusSpec.load(tmp_path / "nope.toml")
