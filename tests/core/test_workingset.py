"""Tests for working-set analysis."""

import numpy as np
import pytest

from repro.core.workingset import working_set_curve
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig


def _collection(addr_fn, n=100_000):
    ev = make_events(ip=1, addr=addr_fn(n), cls=2)
    cfg = SamplingConfig(period=2000, buffer_capacity=256, fill_jitter=0.0)
    return collect_sampled_trace(ev, config=cfg)


class TestWorkingSetCurve:
    def test_growing_working_set_detected(self):
        # phase 1 touches 4 pages; phase 2 touches 64 pages
        def addr(n):
            half = n // 2
            a = np.empty(n, dtype=np.int64)
            a[:half] = (np.arange(half) % (4 * 512)) * 8
            a[half:] = 0x100_0000 + (np.arange(half) % (64 * 512)) * 8
            return a

        curve = working_set_curve(_collection(addr), n_intervals=2)
        assert len(curve) == 2
        assert curve[1].pages_est > 5 * curve[0].pages_est

    def test_estimate_scales_by_rho(self):
        def addr(n):
            return (np.arange(n) % 2048) * 8  # ~4 pages resident

        curve = working_set_curve(_collection(addr), n_intervals=1)
        point = curve[0]
        # true resident set: 2048*8/4096 = 4 pages; rho-scaled estimate
        # overestimates but stays within an order of magnitude
        assert 4 <= point.pages_est <= 80
        assert point.bytes_est == point.pages_est * 4096
        assert point.mb_est == pytest.approx(point.bytes_est / (1 << 20))

    def test_captured_fraction_high_for_resident_set(self):
        def addr(n):
            return (np.arange(n) % 512) * 8  # one hot page, re-touched

        curve = working_set_curve(_collection(addr), n_intervals=1)
        assert curve[0].captured_fraction > 0.9

    def test_streaming_has_low_capture(self):
        def addr(n):
            return np.arange(n) * 4096  # new page every access

        curve = working_set_curve(_collection(addr), n_intervals=1)
        assert curve[0].captured_fraction < 0.1

    def test_bad_args(self):
        def addr(n):
            return np.arange(n)

        col = _collection(addr, n=10_000)
        with pytest.raises(ValueError):
            working_set_curve(col, n_intervals=0)
        with pytest.raises(ValueError):
            working_set_curve(col, page_size=1000)

    def test_empty(self):
        ev = make_events(ip=1, addr=np.arange(0))
        cfg = SamplingConfig(period=10, buffer_capacity=4)
        col = collect_sampled_trace(ev, config=cfg)
        assert working_set_curve(col) == []
