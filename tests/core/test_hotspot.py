"""Tests for hotspot analysis and ROI construction."""

import numpy as np
import pytest

from repro.core.hotspot import (
    find_hotspots,
    function_ranges,
    roi_from_hotspots,
)
from repro.trace.event import make_events


def _skewed_events():
    """fn0: 70%, fn1: 25%, fn2: 5% of accesses."""
    fn = np.concatenate([np.zeros(700), np.ones(250), np.full(50, 2)]).astype(np.uint32)
    ip = 0x400000 + fn * 0x10000 + 4
    return make_events(ip=ip, addr=np.arange(1000), cls=2, fn=fn)


class TestFindHotspots:
    def test_ranking(self):
        hs = find_hotspots(_skewed_events(), {0: "hot", 1: "warm", 2: "cold"})
        assert hs[0].function == "hot"
        assert hs[0].share == pytest.approx(0.70)

    def test_coverage_cutoff(self):
        hs = find_hotspots(_skewed_events(), coverage=0.65)
        assert len(hs) == 1
        hs = find_hotspots(_skewed_events(), coverage=0.90)
        assert len(hs) == 2

    def test_max_functions(self):
        hs = find_hotspots(_skewed_events(), coverage=1.0, max_functions=2)
        assert len(hs) == 2

    def test_suppressed_constants_weighted(self):
        ev = make_events(ip=[1, 2], addr=[1, 2], cls=2, fn=[0, 1], n_const=[100, 0])
        hs = find_hotspots(ev)
        assert hs[0].fn_id == 0

    def test_empty(self):
        assert find_hotspots(make_events(ip=1, addr=np.arange(0))) == []

    def test_bad_coverage(self):
        with pytest.raises(ValueError):
            find_hotspots(_skewed_events(), coverage=0.0)


class TestRoi:
    def test_function_ranges(self):
        ranges = function_ranges(_skewed_events())
        assert set(ranges) == {0, 1, 2}
        lo, hi = ranges[0]
        assert lo <= 0x400004 < hi

    def test_roi_covers_top_functions(self):
        ev = _skewed_events()
        hs = find_hotspots(ev, coverage=0.9)
        roi = roi_from_hotspots(hs, ev)
        # every access of the top-2 functions is admitted
        hot_ips = ev["ip"][(ev["fn"] == 0) | (ev["fn"] == 1)]
        assert roi.contains(hot_ips).all()
        # cold function excluded
        cold_ips = ev["ip"][ev["fn"] == 2]
        assert not roi.contains(cold_ips).any()

    def test_roi_top_limit(self):
        ev = _skewed_events()
        hs = find_hotspots(ev, coverage=1.0)
        roi = roi_from_hotspots(hs, ev, top=1)
        assert len(roi.ranges) == 1
