"""Tests for phase detection."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.phases import detect_phases, sample_features
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig


def _alternating_collection(phase_loads=20_000, n_phases=4):
    """Alternating strided / irregular phases."""
    rng = derive_rng(0, "phases-alternating")
    parts = []
    for k in range(n_phases):
        if k % 2 == 0:
            addr = 0x10_0000 + (np.arange(phase_loads) * 8) % 65536
            cls = int(LoadClass.STRIDED)
        else:
            addr = 0x80_0000 + rng.integers(0, 8192, phase_loads) * 8
            cls = int(LoadClass.IRREGULAR)
        parts.append(make_events(ip=1 + k, addr=addr, cls=cls, fn=k))
    ev = np.concatenate(parts)
    ev["t"] = np.arange(len(ev))
    cfg = SamplingConfig(period=997, buffer_capacity=128, fill_jitter=0.0)
    return collect_sampled_trace(ev, config=cfg)


class TestSampleFeatures:
    def test_values_in_range(self):
        col = _alternating_collection()
        f = sample_features(col)
        valid = f[~np.isnan(f)]
        assert np.all((valid >= 0) & (valid <= 1))

    def test_pure_phases_give_extreme_shares(self):
        col = _alternating_collection()
        f = sample_features(col)
        assert (f > 0.95).any() and (f < 0.05).any()


class TestDetectPhases:
    def test_finds_alternating_phases(self):
        col = _alternating_collection(n_phases=4)
        phases = detect_phases(col)
        assert len(phases) == 4
        labels = [p.label for p in phases]
        assert labels == ["regular", "irregular", "regular", "irregular"]

    def test_phase_time_spans_ordered(self):
        phases = detect_phases(_alternating_collection())
        for a, b in zip(phases, phases[1:]):
            assert a.t_end <= b.t_start + 1
        assert all(p.n_samples >= 1 for p in phases)

    def test_single_phase_stream(self):
        ev = make_events(ip=1, addr=np.arange(50_000) * 8, cls=int(LoadClass.STRIDED))
        cfg = SamplingConfig(period=997, buffer_capacity=64, fill_jitter=0.0)
        col = collect_sampled_trace(ev, config=cfg)
        phases = detect_phases(col)
        assert len(phases) == 1
        assert phases[0].label == "regular"
        assert phases[0].strided_share == pytest.approx(1.0)

    def test_diagnostics_attached(self):
        phases = detect_phases(_alternating_collection())
        for p in phases:
            assert p.diagnostics.A_obs > 0

    def test_threshold_validation(self):
        col = _alternating_collection(phase_loads=5000, n_phases=2)
        with pytest.raises(ValueError):
            detect_phases(col, threshold=0.0)
        with pytest.raises(ValueError):
            detect_phases(col, min_phase_samples=0)

    def test_high_threshold_merges_mild_variation(self):
        # phases with strided shares ~0.6 and ~0.4: a 0.3 threshold sees
        # one mixed phase; a 0.05 threshold splits them
        rng = derive_rng(3, "phases-threshold")
        parts = []
        for k in range(4):
            n = 20_000
            share = 0.6 if k % 2 == 0 else 0.4
            cls = np.where(rng.random(n) < share, 1, 2)
            parts.append(make_events(ip=1, addr=rng.integers(0, 65536, n), cls=cls))
        ev = np.concatenate(parts)
        ev["t"] = np.arange(len(ev))
        cfg = SamplingConfig(period=997, buffer_capacity=128, fill_jitter=0.0)
        col = collect_sampled_trace(ev, config=cfg)
        coarse = detect_phases(col, threshold=0.45)
        fine = detect_phases(col, threshold=0.05)
        assert len(coarse) <= 2  # 0.6-vs-0.4 never jumps past 0.45
        assert all(p.label == "mixed" for p in coarse)
        assert len(fine) > len(coarse)

    def test_empty_collection(self):
        ev = make_events(ip=1, addr=np.arange(0))
        cfg = SamplingConfig(period=10, buffer_capacity=4)
        col = collect_sampled_trace(ev, config=cfg)
        assert detect_phases(col) == []
