"""Tests for undersampling detection."""

import numpy as np

from repro.core.confidence import code_window_confidence, flag_undersampled
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig


def _collection(rare_in_one_sample=True):
    """fn0 everywhere; fn1 only inside one short burst."""
    n = 50_000
    fn = np.zeros(n, dtype=np.uint32)
    if rare_in_one_sample:
        fn[30_900:31_100] = 1  # a 200-load burst caught by one window
    ev = make_events(ip=1 + fn, addr=np.arange(n) % 999, cls=2, fn=fn)
    cfg = SamplingConfig(period=1000, buffer_capacity=200, fill_jitter=0.0, fill_mean=0.5)
    return collect_sampled_trace(ev, config=cfg)


class TestConfidence:
    def test_steady_function_confident(self):
        conf = code_window_confidence(_collection(), {0: "steady", 1: "burst"})
        assert not conf["steady"].undersampled
        assert conf["steady"].relative_error < 0.1

    def test_bursty_function_flagged(self):
        conf = code_window_confidence(_collection(), {0: "steady", 1: "burst"})
        assert conf["burst"].undersampled
        assert conf["burst"].n_samples_present < 5

    def test_ci_contains_truth_for_steady(self):
        col = _collection()
        conf = code_window_confidence(col, {0: "steady", 1: "burst"})
        lo, hi = conf["steady"].ci95
        true_a = 49_800  # fn0's true load count
        assert lo <= true_a * 1.1 and hi >= true_a * 0.9

    def test_flag_list(self):
        flagged = flag_undersampled(_collection(), {0: "steady", 1: "burst"})
        assert flagged == ["burst"]

    def test_thresholds_adjustable(self):
        col = _collection()
        conf = code_window_confidence(
            col, {0: "steady", 1: "burst"}, min_samples=1, max_relative_error=100.0
        )
        assert not conf["burst"].undersampled

    def test_empty_collection(self):
        ev = make_events(ip=1, addr=np.arange(0))
        cfg = SamplingConfig(period=10, buffer_capacity=4)
        col = collect_sampled_trace(ev, config=cfg)
        assert code_window_confidence(col) == {}

    def test_samples_present_counts(self):
        conf = code_window_confidence(_collection(), {0: "steady", 1: "burst"})
        c = conf["steady"]
        # present in every sample except the one the burst fully occupies
        assert c.n_samples_present >= c.n_samples_total - 1
