"""Tests for inter-sample reuse-distance estimation (paper SS:V-B)."""

import numpy as np

from repro.core.reuse import inter_sample_distance
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig

CFG = SamplingConfig(period=1000, buffer_capacity=100, fill_mean=1.0, fill_jitter=0.0)


def _loop_stream(working_set_pages: int, n=100_000):
    """Cyclic sweep over a working set: every page reused once per lap."""
    span = working_set_pages * 4096
    addr = (np.arange(n) * 64) % span
    return make_events(ip=1, addr=addr, cls=int(LoadClass.STRIDED))


class TestInterSampleDistance:
    def test_bigger_working_set_bigger_distance(self):
        small = collect_sampled_trace(_loop_stream(8), config=CFG)
        large = collect_sampled_trace(_loop_stream(64), config=CFG)
        d_small, n_small = inter_sample_distance(small)
        d_large, n_large = inter_sample_distance(large)
        assert n_small > 0 and n_large > 0
        assert d_large > 2 * d_small

    def test_estimate_tracks_true_working_set(self):
        """For a cyclic sweep, blocks reused across samples have seen the
        whole working set in between: D ~ working-set pages."""
        pages = 16
        col = collect_sampled_trace(_loop_stream(pages), config=CFG)
        d, n = inter_sample_distance(col, block=4096)
        assert n > 0
        assert pages * 0.3 <= d <= pages * 3

    def test_no_cross_sample_reuse(self):
        # streaming: every page touched once, never reused
        ev = make_events(ip=1, addr=np.arange(50_000) * 4096, cls=1)
        col = collect_sampled_trace(ev, config=CFG)
        d, n = inter_sample_distance(col)
        assert n == 0
        assert d == 0.0

    def test_empty_collection(self):
        ev = make_events(ip=1, addr=np.arange(0))
        col = collect_sampled_trace(ev, config=CFG)
        assert inter_sample_distance(col) == (0.0, 0)

    def test_capped_by_total_footprint(self):
        # two touches of one page separated by a huge idle gap: the
        # estimate is capped at the (rho-scaled) total footprint
        addr = np.concatenate([[0], np.arange(1, 90_000) * 64 % 8192, [0]])
        ev = make_events(ip=1, addr=addr, cls=1)
        col = collect_sampled_trace(ev, config=CFG)
        d, n = inter_sample_distance(col, block=4096)
        if n:
            from repro.core.metrics import footprint
            from repro.trace.compress import sample_ratio_from

            cap = sample_ratio_from(col) * footprint(col.events, 4096)
            assert d <= cap + 1e-9

    def test_pair_budget(self):
        col = collect_sampled_trace(_loop_stream(8), config=CFG)
        _, n = inter_sample_distance(col, max_pairs=10)
        assert n == 10
