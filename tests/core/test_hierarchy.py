"""Tests for the two-level cache hierarchy model."""

import numpy as np
import pytest

from repro.core.cachesim import (
    CacheConfig,
    HierarchyConfig,
    simulate_hierarchy,
)
from repro.trace.event import make_events


class TestConfig:
    def test_line_size_must_match(self):
        with pytest.raises(ValueError):
            HierarchyConfig(
                l1=CacheConfig(size_bytes=4096, line_bytes=64, ways=8),
                l2=CacheConfig(size_bytes=65536, line_bytes=128, ways=16),
            )

    def test_latencies_must_increase(self):
        with pytest.raises(ValueError):
            HierarchyConfig(lat_l1=10, lat_l2=5, lat_mem=100)


class TestHierarchy:
    def test_hot_set_lives_in_l1(self):
        addr = np.tile(np.arange(8) * 64, 500)
        stats = simulate_hierarchy(make_events(ip=1, addr=addr, cls=1))
        assert stats.l1_hits >= len(addr) - 16
        assert stats.amat < stats.config.lat_l1 * 1.2

    def test_l2_catches_medium_working_set(self):
        # 16 KiB working set: too big for a 4 KiB L1, fits a 64 KiB L2
        cfg = HierarchyConfig(
            l1=CacheConfig(size_bytes=4096, ways=8),
            l2=CacheConfig(size_bytes=65536, ways=16),
        )
        addr = np.tile(np.arange(256) * 64, 50)
        stats = simulate_hierarchy(make_events(ip=1, addr=addr, cls=2), cfg)
        assert stats.l2_hits > stats.l1_hits
        assert stats.misses <= 256

    def test_giant_working_set_goes_to_memory(self, rng):
        addr = rng.integers(0, 1 << 22, 5000) * 64
        cfg = HierarchyConfig(
            l1=CacheConfig(size_bytes=4096, ways=8),
            l2=CacheConfig(size_bytes=65536, ways=16),
        )
        stats = simulate_hierarchy(make_events(ip=1, addr=addr, cls=2), cfg)
        assert stats.misses > 0.9 * stats.n_accesses
        assert stats.amat > 100

    def test_amat_bounds(self):
        addr = np.arange(1000) * 64
        stats = simulate_hierarchy(make_events(ip=1, addr=addr, cls=1))
        c = stats.config
        assert c.lat_l1 <= stats.amat <= c.lat_mem

    def test_prefetch_helps_streams(self):
        addr = np.arange(20_000) * 64
        on = HierarchyConfig()
        off = HierarchyConfig(
            l1=CacheConfig(size_bytes=4 * 1024, ways=8),
            l2=CacheConfig(size_bytes=64 * 1024, ways=16),
        )
        ev = make_events(ip=1, addr=addr, cls=1)
        assert simulate_hierarchy(ev, on).amat < simulate_hierarchy(ev, off).amat

    def test_suppressed_constants_hit_l1(self):
        ev = make_events(ip=1, addr=[0], cls=1, n_const=9)
        stats = simulate_hierarchy(ev)
        assert stats.n_accesses == 10
        assert stats.l1_hits == 9

    def test_empty(self):
        stats = simulate_hierarchy(make_events(ip=1, addr=np.arange(0)))
        assert stats.amat == 0.0

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            simulate_hierarchy(np.zeros(4))


class TestCostModelGrounding:
    def test_amat_ratio_justifies_cost_constants(self, make_rng):
        """The MemoryCostModel charges irregular accesses ~60x a strided
        one; the hierarchy's AMAT ratio for pure streams vs pure random
        traffic lands in the same order of magnitude."""
        rng = make_rng("amat-ratio")
        strided = make_events(ip=1, addr=np.arange(30_000) * 8, cls=1)
        irregular = make_events(ip=1, addr=rng.integers(0, 1 << 22, 30_000) * 64, cls=2)
        amat_s = simulate_hierarchy(strided).amat
        amat_i = simulate_hierarchy(irregular).amat
        ratio = amat_i / amat_s
        assert 10 <= ratio <= 60
