"""Parallel == serial property tests for the sharded analysis engine.

The engine's contract is *bit-identical* output: for any shard split,
worker count, and block size, every merged metric must equal what the
serial functions in :mod:`repro.core.metrics` / :mod:`repro.core.reuse`
/ :mod:`repro.core.heatmap` / :mod:`repro.core.diagnostics` produce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util.rng import derive_rng
from repro.core.diagnostics import compute_diagnostics
from repro.core.heatmap import access_heatmap
from repro.core.metrics import captures_survivals, footprint, footprint_by_class
from repro.core.parallel import (
    CapturesPartial,
    DiagnosticsPartial,
    LRUCache,
    ParallelEngine,
    plan_shards,
)
from repro.core.reuse import ReuseHistogram, mean_reuse_distance, reuse_histogram
from repro.core.windows import code_windows
from repro.trace.event import LoadClass, make_events

BLOCKS = [1, 64, 4096]
WORKERS = [1, 2, 8]


def _trace(n=4000, seed=0, n_samples=13, const_frac=0.2):
    """A deterministic mixed-class trace with sample ids."""
    rng = derive_rng(seed, "parallel-engine-trace")
    ev = make_events(
        ip=rng.integers(0, 40, n),
        addr=rng.integers(0, 1 << 18, n),
        cls=rng.choice(
            [0, 1, 2], n, p=[const_frac, (1 - const_frac) / 2, (1 - const_frac) / 2]
        ).astype(np.uint8),
        n_const=rng.choice([0, 0, 0, 4], n).astype(np.uint16),
        fn=rng.integers(0, 6, n),
    )
    sid = np.sort(rng.integers(0, n_samples, n)).astype(np.int32)
    return ev, sid


# -- shard planning -----------------------------------------------------------


class TestPlanShards:
    def test_covers_range_contiguously(self):
        shards = plan_shards(100, n_shards=7)
        assert shards[0][0] == 0 and shards[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(shards, shards[1:]))

    def test_empty(self):
        assert plan_shards(0, chunk_size=10) == []

    def test_never_splits_a_sample(self, rng):
        sid = np.sort(rng.integers(0, 20, 500))
        for chunk in (1, 7, 64, 500, 1000):
            for lo, hi in plan_shards(500, sid, chunk_size=chunk):
                if hi < 500:
                    assert sid[hi - 1] != sid[hi], (lo, hi, chunk)

    def test_oversized_sample_lands_whole(self):
        sid = np.zeros(50, dtype=np.int64)
        assert plan_shards(50, sid, chunk_size=5) == [(0, 50)]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            plan_shards(10)
        with pytest.raises(ValueError):
            plan_shards(10, n_shards=2, chunk_size=3)
        with pytest.raises(ValueError):
            plan_shards(10, chunk_size=0)

    @given(
        n=st.integers(1, 300),
        chunk=st.integers(1, 80),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_partition(self, n, chunk, seed):
        rng = derive_rng(seed, "plan-shards-property")
        sid = np.sort(rng.integers(0, 9, n))
        shards = plan_shards(n, sid, chunk_size=chunk)
        flat = [i for lo, hi in shards for i in range(lo, hi)]
        assert flat == list(range(n))


# -- merge-operator algebra ---------------------------------------------------


class TestMergeOperators:
    def test_diagnostics_merge_associative(self):
        ev, _ = _trace(900, seed=5)
        parts = [
            DiagnosticsPartial.from_events(ev[i : i + 300], 64) for i in (0, 300, 600)
        ]
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        assert left.finalize(2.0) == right.finalize(2.0)

    def test_diagnostics_identity(self):
        ev, _ = _trace(200, seed=6)
        p = DiagnosticsPartial.from_events(ev, 1)
        assert DiagnosticsPartial.identity().merge(p).finalize() == p.finalize()

    def test_captures_merge_associative_and_commutative(self):
        ev, _ = _trace(900, seed=7)
        a, b, c = (
            CapturesPartial.from_events(ev[i : i + 300], 64) for i in (0, 300, 600)
        )
        assert a.merge(b).merge(c).finalize() == a.merge(b.merge(c)).finalize()
        assert a.merge(b).finalize() == b.merge(a).finalize()

    def test_captures_saturation_across_shards(self):
        # the same block once in each of two shards => one capture, no survival
        ev = make_events(ip=1, addr=[10, 10], cls=LoadClass.IRREGULAR)
        a = CapturesPartial.from_events(ev[:1], 1)
        b = CapturesPartial.from_events(ev[1:], 1)
        assert a.merge(b).finalize() == (1, 0)

    def test_reuse_histogram_merge_matches_whole(self):
        ev, sid = _trace(1200, seed=8, n_samples=6)
        starts = np.concatenate([[0], np.flatnonzero(np.diff(sid)) + 1, [len(ev)]])
        merged = ReuseHistogram.identity()
        for lo, hi in zip(starts[:-1], starts[1:]):
            merged = merged.merge(reuse_histogram(ev[lo:hi], 64, sid[lo:hi]))
        whole = reuse_histogram(ev, 64, sid)
        assert np.array_equal(merged.counts, whole.counts)
        assert (merged.n_cold, merged.n_reuse, merged.d_sum, merged.d_max) == (
            whole.n_cold, whole.n_reuse, whole.d_sum, whole.d_max,
        )
        assert merged.mean == whole.mean

    def test_reuse_histogram_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ReuseHistogram.identity(8).merge(ReuseHistogram.identity(16))


# -- engine == serial, the headline property ----------------------------------


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("block", BLOCKS)
class TestParallelEqualsSerial:
    def test_all_metrics(self, workers, block):
        ev, sid = _trace(3000, seed=workers * 31 + block)
        with ParallelEngine(workers=workers, chunk_size=257) as eng:
            assert eng.footprint(ev, block) == footprint(ev, block)
            assert eng.footprint_by_class(ev, block) == footprint_by_class(ev, block)
            assert eng.captures_survivals(ev, block) == captures_survivals(ev, block)
            assert eng.diagnostics(ev, rho=4.25, block=block) == compute_diagnostics(
                ev, rho=4.25, block=block
            )

    def test_reuse_histogram(self, workers, block):
        ev, sid = _trace(2500, seed=workers + block)
        with ParallelEngine(workers=workers, chunk_size=199) as eng:
            par = eng.reuse_histogram(ev, block, sid)
        ser = reuse_histogram(ev, block, sid)
        assert np.array_equal(par.counts, ser.counts)
        assert par.d_sum == ser.d_sum and par.d_max == ser.d_max
        assert par.mean == ser.mean == mean_reuse_distance(ev, block, sid)


class TestParallelEqualsSerialMore:
    @pytest.mark.parametrize("chunk", [1, 13, 100, 2500, 10_000])
    def test_random_window_splits(self, chunk):
        ev, sid = _trace(2500, seed=chunk)
        with ParallelEngine(workers=1, chunk_size=chunk) as eng:
            assert eng.diagnostics(ev, rho=2.0) == compute_diagnostics(ev, rho=2.0)
            par = eng.reuse_histogram(ev, 64, sid)
        assert np.array_equal(par.counts, reuse_histogram(ev, 64, sid).counts)

    def test_constant_only_trace_counts_one_block(self):
        # the Constant class counts as one footprint unit however it is sharded
        ev = make_events(
            ip=1, addr=np.arange(100), cls=LoadClass.CONSTANT, n_const=2
        )
        with ParallelEngine(workers=1, chunk_size=7) as eng:
            assert eng.footprint(ev, 64) == footprint(ev, 64) == 1
            assert eng.captures_survivals(ev, 64) == (0, 0)
            by_cls = eng.footprint_by_class(ev, 64)
        assert by_cls[LoadClass.CONSTANT] == 1
        assert by_cls[LoadClass.STRIDED] == by_cls[LoadClass.IRREGULAR] == 0

    def test_suppressed_constants_seen_across_shards(self):
        # only one shard carries the proxy record's n_const; merged F still +1
        ev = make_events(ip=1, addr=[1, 2, 3, 4], cls=LoadClass.STRIDED)
        ev["n_const"][3] = 5
        with ParallelEngine(workers=1, chunk_size=2) as eng:
            assert eng.footprint(ev, 1) == footprint(ev, 1) == 5
            d = eng.diagnostics(ev)
        assert d == compute_diagnostics(ev)
        assert d.A_implied == 9

    def test_empty_trace(self):
        ev, _ = _trace(0)
        with ParallelEngine(workers=2, chunk_size=10) as eng:
            assert eng.footprint(ev) == 0
            assert eng.captures_survivals(ev) == (0, 0)
            assert eng.diagnostics(ev) == compute_diagnostics(ev)

    def test_heatmap(self):
        ev, sid = _trace(3000, seed=17, const_frac=0.1)
        with ParallelEngine(workers=1, chunk_size=333) as eng:
            par = eng.heatmap(ev, 0, 1 << 17, sample_id=sid)
        ser = access_heatmap(ev, 0, 1 << 17, sample_id=sid)
        assert np.array_equal(par.counts, ser.counts)
        assert np.array_equal(par.reuse, ser.reuse, equal_nan=True)
        assert np.array_equal(par.t_edges, ser.t_edges)

    def test_code_windows(self):
        ev, _ = _trace(2000, seed=21)
        fn_names = {i: f"f{i}" for i in range(6)}
        serial = code_windows(ev, rho=3.0, block=64, fn_names=fn_names)
        with ParallelEngine(workers=2) as eng:
            par = eng.code_windows(ev, rho=3.0, block=64, fn_names=fn_names)
        assert par == serial

    def test_reuse_without_sample_ids_single_window(self):
        # no sample ids => one reuse window; sharding must not cut it
        ev, _ = _trace(2000, seed=23)
        with ParallelEngine(workers=1, chunk_size=100) as eng:
            par = eng.reuse_histogram(ev, 64, None)
        ser = reuse_histogram(ev, 64, None)
        assert np.array_equal(par.counts, ser.counts) and par.mean == ser.mean

    @given(
        n=st.integers(0, 400),
        chunk=st.integers(1, 120),
        block_exp=st.sampled_from([0, 6, 12]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_diagnostics(self, n, chunk, block_exp, seed):
        ev, sid = _trace(max(n, 1), seed=seed)[0][:n], None
        block = 1 << block_exp
        with ParallelEngine(workers=1, chunk_size=chunk) as eng:
            assert eng.diagnostics(ev, block=block) == compute_diagnostics(
                ev, block=block
            )
            assert eng.captures_survivals(ev, block) == captures_survivals(ev, block)


# -- pool behaviour over the real process boundary ----------------------------


class TestProcessPool:
    def test_pool_path_bit_identical(self):
        # large enough to clear the pool threshold with several shards
        ev, sid = _trace(40_000, seed=29, n_samples=64)
        with ParallelEngine(workers=2, chunk_size=5000) as eng:
            d = eng.diagnostics(ev, rho=2.5, block=64, sample_id=sid)
            h = eng.reuse_histogram(ev, 64, sid)
        assert d == compute_diagnostics(ev, rho=2.5, block=64)
        assert np.array_equal(h.counts, reuse_histogram(ev, 64, sid).counts)

    def test_engine_stats_recorded(self):
        ev, sid = _trace(40_000, seed=31)
        with ParallelEngine(workers=2, chunk_size=5000) as eng:
            eng.diagnostics(ev, sample_id=sid)
            stats = dict(eng.timers.stats)
        assert "compute" in stats and stats["compute"].items == 40_000
        assert "merge" in stats


# -- LRU cache ----------------------------------------------------------------


class TestLRUCache:
    def test_basic_get_put(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1 and c.hits == 1

    def test_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refresh a
        c.put("c", 3)  # evicts b
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_engine_memoizes_by_window_id(self):
        ev, _ = _trace(500, seed=37)
        with ParallelEngine(workers=1) as eng:
            d1 = eng.diagnostics(ev, rho=2.0, window_id=("w", 0))
            before = eng.cache.misses
            d2 = eng.diagnostics(ev, rho=2.0, window_id=("w", 0))
            # same cached partial serves a different rho
            d3 = eng.diagnostics(ev, rho=5.0, window_id=("w", 0))
        assert d1 == d2
        assert d3 == compute_diagnostics(ev, rho=5.0)
        assert eng.cache.misses == before and eng.cache.hits >= 2

    def test_metric_key_separates_entries(self):
        ev, _ = _trace(500, seed=41)
        with ParallelEngine(workers=1) as eng:
            eng.diagnostics(ev, window_id=("w", 1))
            eng.captures_survivals(ev, window_id=("w", 1))
            assert len(eng.cache) == 2
