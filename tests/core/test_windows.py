"""Tests for trace windows and code windows."""

import numpy as np
import pytest

from repro.core.windows import code_windows, trace_window_metrics, unique_per_group
from repro.trace.event import make_events


class TestUniquePerGroup:
    def test_basic(self):
        groups = np.array([0, 0, 0, 1, 1])
        values = np.array([5, 5, 6, 7, 7])
        assert list(unique_per_group(groups, values, 2)) == [2, 1]

    def test_empty(self):
        assert list(unique_per_group(np.array([], int), np.array([], int), 3)) == [0, 0, 0]

    def test_mismatch(self):
        with pytest.raises(ValueError):
            unique_per_group(np.array([0]), np.array([], int), 1)


class TestTraceWindows:
    def test_footprint_per_window(self):
        # 2 windows of 4: [0,1,2,3] and [0,0,0,0]
        ev = make_events(ip=1, addr=[0, 1, 2, 3, 0, 0, 0, 0], cls=2)
        vals = trace_window_metrics(ev, 4)
        assert list(vals) == [4.0, 1.0]

    def test_df_metric(self):
        ev = make_events(ip=1, addr=[0, 0, 0, 0], cls=2)
        vals = trace_window_metrics(ev, 4, metric="dF")
        assert vals[0] == pytest.approx(0.25)

    def test_class_metrics(self):
        ev = make_events(ip=1, addr=[0, 8, 16, 24], cls=[1, 1, 2, 2])
        assert trace_window_metrics(ev, 4, metric="F_str")[0] == 2.0
        assert trace_window_metrics(ev, 4, metric="F_irr")[0] == 2.0

    def test_short_tail_dropped(self):
        ev = make_events(ip=1, addr=np.arange(10), cls=2)
        vals = trace_window_metrics(ev, 8, min_fill=0.5)
        assert len(vals) == 1  # the 2-record tail is below 4

    def test_windows_respect_sample_boundaries(self):
        ev = make_events(ip=1, addr=np.arange(8), cls=2)
        sid = np.array([0] * 4 + [1] * 4)
        vals = trace_window_metrics(ev, 4, sample_id=sid)
        assert len(vals) == 2

    def test_constant_unit_in_f(self):
        ev = make_events(ip=1, addr=[1, 2, 99, 98], cls=[2, 2, 0, 0])
        assert trace_window_metrics(ev, 4)[0] == 3.0

    def test_bad_args(self):
        ev = make_events(ip=1, addr=[1], cls=2)
        with pytest.raises(ValueError):
            trace_window_metrics(ev, 0)
        with pytest.raises(ValueError):
            trace_window_metrics(ev, 4, metric="bogus")

    def test_empty(self):
        ev = make_events(ip=1, addr=np.arange(0))
        assert len(trace_window_metrics(ev, 4)) == 0


class TestCodeWindows:
    def test_per_function_split(self):
        ev = make_events(ip=1, addr=[1, 2, 3, 4], cls=2, fn=[0, 0, 1, 1])
        out = code_windows(ev, fn_names={0: "alpha", 1: "beta"})
        assert set(out) == {"alpha", "beta"}
        assert out["alpha"].A_obs == 2

    def test_fallback_names(self):
        ev = make_events(ip=1, addr=[1], cls=2, fn=7)
        assert "fn7" in code_windows(ev)

    def test_rho_applied(self):
        ev = make_events(ip=1, addr=[1, 2], cls=2, fn=0)
        out = code_windows(ev, rho=5.0)
        assert out["fn0"].A_est == 10.0
