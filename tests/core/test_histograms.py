"""Tests for window histograms and MAPE."""

import numpy as np
import pytest

from repro.core.histograms import default_window_sizes, mape, window_histogram
from repro.trace.event import make_events


class TestDefaultSizes:
    def test_powers_of_two(self):
        assert default_window_sizes(64, 8) == [8, 16, 32, 64]

    def test_min_rounded_up(self):
        assert default_window_sizes(32, 5) == [8, 16, 32]

    def test_bad_range(self):
        with pytest.raises(ValueError):
            default_window_sizes(4, 8)


class TestWindowHistogram:
    def test_streaming_footprint_equals_window(self):
        ev = make_events(ip=1, addr=np.arange(1024), cls=2)
        sizes, means = window_histogram(ev, "F", sizes=[8, 16, 32])
        assert list(sizes) == [8, 16, 32]
        assert list(means) == [8.0, 16.0, 32.0]

    def test_nan_for_oversized_windows(self):
        ev = make_events(ip=1, addr=np.arange(10), cls=2)
        _, means = window_histogram(ev, "F", sizes=[8, 64])
        assert not np.isnan(means[0])
        assert np.isnan(means[1])

    def test_default_sizes_from_samples(self):
        ev = make_events(ip=1, addr=np.arange(100), cls=2)
        sid = np.repeat(np.arange(4), 25)
        sizes, _ = window_histogram(ev, "F", sample_id=sid)
        assert sizes.max() <= 25


class TestMape:
    def test_zero_for_identical(self):
        a = np.array([1.0, 2.0, 3.0])
        assert mape(a, a) == 0.0

    def test_known_value(self):
        assert mape(np.array([11.0]), np.array([10.0])) == pytest.approx(10.0)

    def test_skips_nan_and_zero(self):
        m = mape(np.array([1.0, np.nan, 5.0]), np.array([1.0, 2.0, 0.0]))
        assert m == 0.0

    def test_all_invalid_is_nan(self):
        assert np.isnan(mape(np.array([np.nan]), np.array([1.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mape(np.array([1.0]), np.array([1.0, 2.0]))
