"""Unit and property tests for footprint metrics (Eq. 3 quantities)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    block_ids,
    captures_survivals,
    estimated_footprint,
    footprint,
    footprint_by_class,
    nonconstant,
)
from repro.trace.event import LoadClass, make_events


def _ev(addrs, cls=LoadClass.IRREGULAR, n_const=0):
    return make_events(ip=1, addr=np.asarray(addrs, dtype=np.uint64), cls=cls, n_const=n_const)


class TestBlockIds:
    def test_byte_granularity(self):
        ev = _ev([0, 1, 64])
        assert list(block_ids(ev, 1)) == [0, 1, 64]

    def test_cache_line_granularity(self):
        ev = _ev([0, 63, 64, 127, 128])
        assert list(block_ids(ev, 64)) == [0, 0, 1, 1, 2]

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            block_ids(_ev([0]), 48)


class TestFootprint:
    def test_unique_addresses(self):
        assert footprint(_ev([1, 2, 2, 3])) == 3

    def test_blocks_collapse(self):
        assert footprint(_ev([0, 8, 16]), block=64) == 1

    def test_empty(self):
        assert footprint(_ev([])) == 0

    def test_constant_counts_one_unit(self):
        ev = make_events(
            ip=1, addr=[10, 20, 999, 998], cls=[2, 2, 0, 0]
        )
        # two irregular addresses + one unit for all constants
        assert footprint(ev) == 3

    def test_suppressed_constants_count_one_unit(self):
        ev = _ev([10], n_const=4)
        assert footprint(ev) == 2

    def test_by_class_decomposition(self):
        ev = make_events(ip=1, addr=[1, 2, 2, 3], cls=[1, 1, 2, 0])
        by = footprint_by_class(ev)
        assert by[LoadClass.STRIDED] == 2
        assert by[LoadClass.IRREGULAR] == 1
        assert by[LoadClass.CONSTANT] == 1

    def test_shared_block_counts_in_both_classes(self):
        ev = make_events(ip=1, addr=[5, 5], cls=[1, 2])
        by = footprint_by_class(ev)
        assert by[LoadClass.STRIDED] == 1
        assert by[LoadClass.IRREGULAR] == 1


class TestCapturesSurvivals:
    def test_split(self):
        c, s = captures_survivals(_ev([1, 1, 2, 3, 3, 3, 4]))
        assert (c, s) == (2, 2)

    def test_constants_excluded(self):
        ev = make_events(ip=1, addr=[7, 7, 9], cls=[2, 2, 0])
        assert captures_survivals(ev) == (1, 0)

    def test_sum_is_nonconstant_footprint(self):
        ev = _ev([1, 2, 2, 9, 9, 9])
        c, s = captures_survivals(ev)
        assert c + s == footprint(ev)


class TestEstimatedFootprint:
    def test_intra_exact(self):
        assert estimated_footprint(_ev([1, 2]), rho=10.0, intra=True) == 2.0

    def test_inter_scaled(self):
        assert estimated_footprint(_ev([1, 2]), rho=10.0, intra=False) == 20.0

    def test_rho_validated(self):
        with pytest.raises(ValueError):
            estimated_footprint(_ev([1]), rho=0.5)


class TestNonconstant:
    def test_filters(self):
        ev = make_events(ip=1, addr=[1, 2, 3], cls=[0, 1, 2])
        assert len(nonconstant(ev)) == 2


@given(addrs=st.lists(st.integers(0, 1000), max_size=200))
def test_footprint_invariants(addrs):
    """Properties: F <= accesses; F monotone under concatenation; block
    coarsening never increases F."""
    ev = _ev(addrs)
    f1 = footprint(ev, 1)
    assert f1 <= len(addrs)
    assert footprint(ev, 64) <= f1
    if addrs:
        prefix = _ev(addrs[: len(addrs) // 2])
        assert footprint(prefix) <= f1
    c, s = captures_survivals(ev)
    assert c + s == f1
