"""Tests for the end-to-end MemGaze driver."""

import numpy as np
import pytest

from repro.core.pipeline import AnalysisConfig, MemGaze
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig
from repro.workloads.microbench import build_microbench


@pytest.fixture
def mg():
    return MemGaze(
        AnalysisConfig(SamplingConfig(period=1000, buffer_capacity=128, fill_jitter=0.0))
    )


class TestAnalyzeEvents:
    def test_basic_flow(self, mg):
        ev = make_events(ip=1, addr=np.arange(50_000) % 4096, cls=2)
        res = mg.analyze_events(ev)
        assert res.collection.n_samples == 50
        assert res.rho > 1.0
        assert res.kappa == 1.0
        assert res.diagnostics.A_obs == len(res.events)

    def test_per_function_split(self, mg):
        ev = make_events(
            ip=1, addr=np.arange(20_000), cls=2, fn=(np.arange(20_000) // 10_000)
        )
        res = mg.analyze_events(ev, fn_names={0: "first", 1: "second"})
        assert set(res.per_function) <= {"first", "second"}

    def test_zoom_and_intervals_accessible(self, mg):
        ev = make_events(ip=1, addr=0x1000 + np.arange(20_000) % 8192, cls=2)
        res = mg.analyze_events(ev)
        root = res.zoom()
        assert root.n_accesses == len(res.events)
        rows = res.time_intervals(4)
        assert len(rows) == 4

    def test_wrong_dtype(self, mg):
        with pytest.raises(TypeError):
            mg.analyze_events(np.zeros(5))


class TestResultConveniences:
    def test_hotspots_method(self, mg):
        ev = make_events(
            ip=1, addr=np.arange(40_000), cls=2, fn=(np.arange(40_000) > 35_000)
        )
        res = mg.analyze_events(ev, fn_names={0: "dominant", 1: "minor"})
        hs = res.hotspots()
        assert hs[0].function == "dominant"
        assert hs[0].share > 0.8

    def test_confidence_method(self, mg):
        ev = make_events(ip=1, addr=np.arange(40_000), cls=2, fn=0)
        res = mg.analyze_events(ev, fn_names={0: "steady"})
        conf = res.confidence()
        assert "steady" in conf
        assert not conf["steady"].undersampled

    def test_working_set_method(self, mg):
        ev = make_events(ip=1, addr=(np.arange(40_000) * 64) % (32 * 4096), cls=2)
        res = mg.analyze_events(ev)
        curve = res.working_set(n_intervals=4)
        assert len(curve) == 4
        assert all(p.pages_est > 0 for p in curve)


class TestAnalyzeRecorder:
    def test_recorder_roundtrip(self, mg):
        rec = AccessRecorder()
        with rec.scope("hot"):
            site = rec.scoped_site(LoadClass.STRIDED, "x")
            rec.record_many(site, np.arange(5000) * 8)
        res = mg.analyze_recorder(rec)
        assert "hot" in res.per_function
        assert res.counts is not None


class TestRunModule:
    def test_isa_path_end_to_end(self, mg):
        module = build_microbench("str4", n_elems=1024, repeats=20)
        from repro.simmem.address_space import AddressSpace
        from repro.workloads.microbench import _setup_data

        space = AddressSpace()
        regions = _setup_data(space, 1024, 0)
        res = mg.run_module(
            module, "main", regions["arr"].base, regions["cond"].base, space=space
        )
        assert res.instrumentation is not None
        assert res.kappa > 1.0  # constants were compressed
        assert res.counts.n_ptwrites > 0
        assert "main" in res.fn_names.values()
        # samples exist and carry strided class
        assert (res.events["cls"] == int(LoadClass.STRIDED)).any()
