"""Property tests for the unified analysis-pass framework.

The framework's contract: every registered pass, run through the fused
executor (serial :func:`~repro.core.passes.fused_scan` or the
:class:`~repro.core.parallel.ParallelEngine`), produces output
**bit-identical** to its legacy serial function — for any worker count
and chunk size — while the trace is scanned once for the whole schedule
and shared intermediates are computed once per chunk.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.diagnostics import compute_diagnostics
from repro.core.heatmap import access_heatmap, heatmap_geometry
from repro.core.hotspot import find_hotspots, roi_from_hotspots
from repro.core.metrics import captures_survivals, footprint, footprint_by_class
from repro.core.parallel import ParallelEngine, plan_shards
from repro.core.passes import (
    AnalysisPass,
    ChunkContext,
    RunContext,
    UnknownPassError,
    fused_scan,
    get_pass,
    list_passes,
    register_pass,
    scan_chunk,
    schedule_passes,
    unregister_pass,
)
from repro.core.reuse import reuse_histogram
from repro.trace.event import LoadClass, make_events

WORKERS = [1, 4]
CHUNKS = [17, 257, 5000]
FN_NAMES = {i: f"f{i}" for i in range(6)}


def _trace(n=3000, seed=0, n_samples=13, const_frac=0.2):
    rng = derive_rng(seed, "passes-trace")
    ev = make_events(
        ip=rng.integers(0x400000, 0x400000 + 4 * 40, n),
        addr=rng.integers(0, 1 << 18, n),
        cls=rng.choice(
            [0, 1, 2], n, p=[const_frac, (1 - const_frac) / 2, (1 - const_frac) / 2]
        ).astype(np.uint8),
        n_const=rng.choice([0, 0, 0, 4], n).astype(np.uint16),
        fn=rng.integers(0, 6, n),
    )
    sid = np.sort(rng.integers(0, n_samples, n)).astype(np.int32)
    return ev, sid


def _chunks(ev, sid, chunk):
    """Sample-aligned (events, sample_id) chunks, like iter_trace_chunks."""
    for lo, hi in plan_shards(len(ev), sid, chunk_size=chunk):
        yield ev[lo:hi], sid[lo:hi]


def _heatmap_request(ev, sid, base=0, size=1 << 17, n_pages=64, n_bins=64):
    nc = ev[ev["cls"] != int(LoadClass.CONSTANT)]
    page_size, t_edges = heatmap_geometry(nc, size, n_pages, n_bins)
    return (
        "heatmap",
        {
            "base": base,
            "size": size,
            "page_size": page_size,
            "t_edges": t_edges,
            "n_pages": n_pages,
            "n_bins": n_bins,
            "access_block": 64,
        },
    )


def _all_requests(ev, sid):
    """One request per registered built-in pass."""
    return [
        ("diagnostics", {"block": 64}),
        ("captures", {"block": 64}),
        ("reuse", {"block": 64}),
        "hotspot",
        "roi",
        _heatmap_request(ev, sid),
    ]


def _assert_matches_serial(results, ev, sid, rho=1.0):
    """Every pass result equals its legacy serial function, bit for bit."""
    assert results["diagnostics"] == compute_diagnostics(ev, rho=rho, block=64)
    assert results["captures"] == captures_survivals(ev, 64)
    ser_hist = reuse_histogram(ev, 64, sid)
    assert np.array_equal(results["reuse"].counts, ser_hist.counts)
    assert results["reuse"].d_sum == ser_hist.d_sum
    assert results["reuse"].d_max == ser_hist.d_max
    assert results["reuse"].mean == ser_hist.mean
    ser_hot = find_hotspots(ev, FN_NAMES)
    assert results["hotspot"] == ser_hot
    assert results["roi"] == roi_from_hotspots(ser_hot, ev)
    ser_heat = access_heatmap(ev, 0, 1 << 17, sample_id=sid)
    assert np.array_equal(results["heatmap"].counts, ser_heat.counts)
    assert np.array_equal(results["heatmap"].reuse, ser_heat.reuse, equal_nan=True)


# -- the headline property: fused == serial, every pass, one scan -------------


class TestFusedEqualsSerial:
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_fused_scan_all_passes(self, chunk):
        ev, sid = _trace(3000, seed=chunk)
        results = fused_scan(
            _chunks(ev, sid, chunk), _all_requests(ev, sid), fn_names=FN_NAMES
        )
        _assert_matches_serial(results, ev, sid)

    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_engine_run_passes_all_passes(self, workers, chunk):
        ev, sid = _trace(3000, seed=workers * 101 + chunk)
        with ParallelEngine(workers=workers, chunk_size=chunk) as eng:
            results = eng.run_passes(
                ev, _all_requests(ev, sid), sample_id=sid, fn_names=FN_NAMES
            )
        _assert_matches_serial(results, ev, sid)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_pool_path_bit_identical(self, workers):
        # large enough to clear the pool threshold with several shards
        ev, sid = _trace(40_000, seed=3, n_samples=64)
        with ParallelEngine(workers=workers, chunk_size=5000) as eng:
            results = eng.run_passes(
                ev, _all_requests(ev, sid), sample_id=sid, fn_names=FN_NAMES, rho=2.5
            )
        _assert_matches_serial(results, ev, sid, rho=2.5)

    def test_rho_reaches_finalize(self):
        ev, sid = _trace(1000, seed=9)
        results = fused_scan(_chunks(ev, sid, 100), ["diagnostics"], rho=4.25)
        assert results["diagnostics"] == compute_diagnostics(ev, rho=4.25, block=1)

    def test_footprint_helpers_still_match(self):
        ev, sid = _trace(2000, seed=11)
        with ParallelEngine(workers=1, chunk_size=123) as eng:
            assert eng.footprint(ev, 64, sid) == footprint(ev, 64)
            assert eng.footprint_by_class(ev, 64, sid) == footprint_by_class(ev, 64)


class TestEdgeCases:
    def test_empty_trace_every_pass(self):
        ev, sid = _trace(0)
        requests = [
            "diagnostics",
            "captures",
            ("reuse", {"block": 64}),
            "hotspot",
            "roi",
            _heatmap_request(ev, sid),
        ]
        results = fused_scan(iter([]), requests)
        assert results["diagnostics"] == compute_diagnostics(ev)
        assert results["captures"] == (0, 0)
        assert results["hotspot"] == []
        assert results["roi"].ranges == []
        assert results["reuse"].n_reuse == 0 and results["reuse"].n_cold == 0
        assert results["heatmap"].counts.sum() == 0
        with ParallelEngine(workers=2, chunk_size=10) as eng:
            eng_results = eng.run_passes(ev, requests, sample_id=sid)
        assert eng_results["diagnostics"] == results["diagnostics"]
        assert eng_results["hotspot"] == []

    def test_single_sample_trace(self):
        # one sample: sample-aligned chunking cannot cut it, and the
        # whole-trace result must still match the serial functions
        ev, _ = _trace(500, seed=21)
        sid = np.zeros(500, dtype=np.int32)
        with ParallelEngine(workers=1, chunk_size=50) as eng:
            results = eng.run_passes(
                ev,
                [("diagnostics", {"block": 64}), ("reuse", {"block": 64}), "hotspot"],
                sample_id=sid,
                fn_names=FN_NAMES,
            )
        assert results["diagnostics"] == compute_diagnostics(ev, block=64)
        ser = reuse_histogram(ev, 64, sid)
        assert np.array_equal(results["reuse"].counts, ser.counts)
        assert results["hotspot"] == find_hotspots(ev, FN_NAMES)

    def test_single_event_trace(self):
        ev, sid = _trace(1, seed=23)
        results = fused_scan(
            _chunks(ev, sid, 4), ["diagnostics", "captures", "hotspot"]
        )
        assert results["diagnostics"] == compute_diagnostics(ev)
        assert results["captures"] == captures_survivals(ev, 1)

    def test_reuse_without_samples_runs_whole(self):
        # no sample ids => the reuse window spans the trace; the engine
        # must refuse to cut it even with a tiny chunk size
        ev, _ = _trace(2000, seed=25)
        with ParallelEngine(workers=1, chunk_size=100) as eng:
            results = eng.run_passes(ev, [("reuse", {"block": 64})], sample_id=None)
        ser = reuse_histogram(ev, 64, None)
        assert np.array_equal(results["reuse"].counts, ser.counts)


# -- the dependency scheduler -------------------------------------------------


class TestScheduler:
    def test_dependency_closure_pulls_in_hotspot(self):
        sched = schedule_passes(["roi"])
        names = [r.name for r in sched]
        assert names == ["hotspot", "roi"]

    def test_dependency_order_respected(self):
        sched = schedule_passes(["roi", "diagnostics", "hotspot"])
        names = [r.name for r in sched]
        assert names.index("hotspot") < names.index("roi")
        assert set(names) == {"roi", "diagnostics", "hotspot"}

    def test_defaults_resolved(self):
        (req,) = [r for r in schedule_passes(["reuse"]) if r.name == "reuse"]
        assert req.params["block"] == 64 and req.params["max_exp"] == 48

    def test_explicit_params_override_defaults(self):
        (req,) = schedule_passes([("diagnostics", {"block": 4096})])
        assert req.params["block"] == 4096

    def test_unknown_pass_lists_alternatives(self):
        with pytest.raises(UnknownPassError) as exc:
            schedule_passes(["diagnostic"])
        msg = str(exc.value)
        assert "diagnostics" in msg  # close-match suggestion + listing
        assert "captures" in msg
        assert exc.value.available == sorted(p.name for p in list_passes())

    def test_duplicate_request_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            schedule_passes(["diagnostics", ("diagnostics", {"block": 64})])

    def test_missing_required_params_rejected(self):
        with pytest.raises(ValueError, match="missing required parameter"):
            schedule_passes(["heatmap"])

    def test_cycle_detected(self):
        class A(AnalysisPass):
            name = "cyc-a"
            requires = ("pass:cyc-b",)

        class B(AnalysisPass):
            name = "cyc-b"
            requires = ("pass:cyc-a",)

        register_pass(A())
        register_pass(B())
        try:
            with pytest.raises(ValueError, match="cycle"):
                schedule_passes(["cyc-a"])
        finally:
            unregister_pass("cyc-a")
            unregister_pass("cyc-b")

    def test_register_rejects_unknown_artifact(self):
        class Bad(AnalysisPass):
            name = "bad-artifact"
            requires = ("no_such_artifact",)

        with pytest.raises(ValueError, match="unknown artifact"):
            register_pass(Bad())

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            register_pass(AnalysisPass())


# -- shared intermediates: computed once per chunk ----------------------------


class TestSharedIntermediates:
    def test_chunk_context_memoizes(self):
        ev, sid = _trace(400, seed=31)
        ctx = ChunkContext(ev, sid)
        a = ctx.block_ids(64)
        b = ctx.block_ids(64)
        assert a is b
        assert (ctx.hits, ctx.misses) == (1, 1)
        ctx.block_ids(1)  # a different block size is a different artifact
        assert ctx.misses == 2
        d1 = ctx.reuse_distances(64)
        d2 = ctx.reuse_distances(64)
        assert d1 is d2

    def test_nonconst_distances_are_a_distinct_artifact(self):
        # the reuse histogram measures D over ALL records; heatmaps over
        # the non-Constant view only — the cache must keep them apart
        ev, sid = _trace(600, seed=33, const_frac=0.4)
        ctx = ChunkContext(ev, sid)
        d_all = ctx.reuse_distances(64)
        d_nc = ctx.reuse_distances(64, nonconst=True)
        assert len(d_all) == len(ev)
        assert len(d_nc) == int((ev["cls"] != 0).sum())

    def test_scan_chunk_shares_artifacts_across_passes(self):
        # diagnostics and captures both want block_ids(64) + class_masks:
        # the second pass must hit the chunk's artifact cache
        ev, sid = _trace(500, seed=35)
        specs = [r.spec for r in schedule_passes(
            [("diagnostics", {"block": 64}), ("captures", {"block": 64})]
        )]
        _, stats = scan_chunk(ev, sid, specs)
        assert stats["artifact_hits"] >= 2
        assert set(stats["pass_seconds"]) == {"diagnostics", "captures"}

    def test_engine_counts_artifact_sharing(self):
        from repro.obs.metrics import MetricsRegistry

        ev, sid = _trace(2000, seed=37)
        reg = MetricsRegistry()
        with ParallelEngine(workers=1, chunk_size=257, metrics=reg) as eng:
            eng.run_passes(
                ev,
                [("diagnostics", {"block": 64}), ("captures", {"block": 64})],
                sample_id=sid,
            )
        snap = reg.as_dict()["counters"]
        assert snap["passes.artifact_hits"]["value"] > 0
        assert snap["passes.chunks_scanned"]["value"] > 0

    def test_per_pass_stage_timers_recorded(self):
        ev, sid = _trace(2000, seed=39)
        with ParallelEngine(workers=1, chunk_size=500) as eng:
            eng.run_passes(ev, ["diagnostics", "hotspot"], sample_id=sid)
            stats = dict(eng.timers.stats)
        assert "pass:diagnostics" in stats and "pass:hotspot" in stats


# -- one scan over the trace, journal-verifiable ------------------------------


class TestSingleScan:
    def test_one_shard_analyzed_line_per_chunk(self, tmp_path):
        from repro.obs.journal import RunJournal

        ev, sid = _trace(3000, seed=41)
        journal = RunJournal(tmp_path / "j.jsonl")
        with ParallelEngine(workers=1, chunk_size=257, journal=journal) as eng:
            eng.run_passes(ev, _all_requests(ev, sid), sample_id=sid)
        journal.close()
        recs = [json.loads(l) for l in (tmp_path / "j.jsonl").read_text().splitlines()]
        scans = [r for r in recs if r["event"] == "shard-analyzed"]
        n_chunks = len(plan_shards(len(ev), sid, chunk_size=257))
        # one scan line per chunk — NOT chunks x passes
        assert len(scans) == n_chunks
        assert all(r["n_passes"] == 6 for r in scans)

    def test_analyze_file_reads_each_chunk_once(self, tmp_path):
        from repro.obs.journal import RunJournal
        from repro.trace.tracefile import TraceMeta, write_trace

        ev, sid = _trace(5000, seed=43)
        path = tmp_path / "t.npz"
        write_trace(
            path, ev, TraceMeta(module="passes-test", period=400, buffer_capacity=64),
            sample_id=sid,
        )
        journal = RunJournal(tmp_path / "j.jsonl")
        with ParallelEngine(workers=1, journal=journal) as eng:
            res = eng.analyze_file(
                path, block=64, chunk_size=1000, passes=["hotspot"]
            )
        journal.close()
        recs = [json.loads(l) for l in (tmp_path / "j.jsonl").read_text().splitlines()]
        reads = [r for r in recs if r["event"] == "chunk-read"]
        scans = [r for r in recs if r["event"] == "shard-analyzed"]
        # 4 metrics over the stream, yet each chunk read and scanned once
        assert len(reads) == len(scans) > 1
        assert all(r["n_passes"] == 4 for r in scans)
        assert res.diagnostics == compute_diagnostics(ev, rho=res.rho, block=64)
        assert res.pass_results["hotspot"] == find_hotspots(ev)

    def test_cache_serves_repeat_queries_without_rescan(self):
        from repro.obs.metrics import MetricsRegistry

        ev, sid = _trace(2000, seed=45)
        reg = MetricsRegistry()
        with ParallelEngine(workers=1, chunk_size=300, metrics=reg) as eng:
            eng.run_passes(ev, ["diagnostics"], sample_id=sid, window_id=("w", 0))
            scanned = reg.as_dict()["counters"]["passes.chunks_scanned"]["value"]
            eng.run_passes(ev, ["diagnostics"], sample_id=sid, window_id=("w", 0))
            again = reg.as_dict()["counters"]["passes.chunks_scanned"]["value"]
        assert again == scanned  # cache hit: zero new chunk scans


# -- the extension protocol: write your own pass ------------------------------


class TestCustomPass:
    def test_custom_pass_runs_fused_and_parallel(self):
        class StridedShare(AnalysisPass):
            """Share of records classified Strided."""

            name = "strided-share"
            requires = ("class_masks",)

            def init(self, params):
                return (0, 0)  # (strided, total)

            def update(self, partial, chunk, params):
                s, t = partial
                return (
                    s + int(chunk.class_masks.strided.sum()),
                    t + len(chunk.events),
                )

            def merge(self, a, b):
                return (a[0] + b[0], a[1] + b[1])

            def finalize(self, partial, ctx, params):
                s, t = partial
                return s / t if t else 0.0

        register_pass(StridedShare())
        try:
            ev, sid = _trace(2500, seed=47)
            expected = int((ev["cls"] == 1).sum()) / len(ev)
            serial = fused_scan(_chunks(ev, sid, 100), ["strided-share"])
            assert serial["strided-share"] == expected
            with ParallelEngine(workers=1, chunk_size=199) as eng:
                fused = eng.run_passes(
                    ev, ["strided-share", "diagnostics"], sample_id=sid
                )
            assert fused["strided-share"] == expected
            assert fused["diagnostics"] == compute_diagnostics(ev)
        finally:
            unregister_pass("strided-share")

    def test_pass_result_dependency_via_run_context(self):
        class TopShare(AnalysisPass):
            """The hottest function's load share."""

            name = "top-share"
            requires = ("pass:hotspot",)

            def init(self, params):
                return None

            def update(self, partial, chunk, params):
                return None

            def merge(self, a, b):
                return None

            def finalize(self, partial, ctx, params):
                hot = ctx.result("hotspot")
                return hot[0].share if hot else 0.0

        register_pass(TopShare())
        try:
            ev, sid = _trace(1500, seed=49)
            results = fused_scan(_chunks(ev, sid, 200), ["top-share"])
            assert results["top-share"] == find_hotspots(ev)[0].share
        finally:
            unregister_pass("top-share")

    def test_run_context_names_missing_dependency(self):
        ctx = RunContext()
        with pytest.raises(KeyError, match="pass:hotspot"):
            ctx.result("hotspot")

    def test_get_pass_error_carries_alternatives(self):
        with pytest.raises(UnknownPassError) as exc:
            get_pass("nope")
        assert "available:" in str(exc.value)
