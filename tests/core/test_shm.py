"""Lifecycle tests for the zero-copy shard handoff.

The contract under test (``repro.core.shm`` + the engine's publish /
release discipline): a published segment is visible to workers by name,
both fan-out paths produce **bit-identical** results to the pickle
handoff, and no segment outlives its analysis — on normal exit, after a
worker is SIGKILLed mid-scan, and with two engines sharing one archive.
"Leaked" is checked two ways: the process-wide registry
(:func:`repro.core.shm.active_segments`) must drain to empty, and
``/dev/shm`` must hold no ``mg-`` entries this process created.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.core.parallel import ParallelEngine
from repro.core.shm import (
    SegmentRegistry,
    active_segments,
    attach_shard,
    publish_shard,
)
from repro.obs.metrics import MetricsRegistry
from repro.trace.event import make_events
from repro.trace.tracefile import TraceMeta, write_trace

SHM_DIR = "/dev/shm"


def _live_segments() -> set[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-tmpfs platform
        return set()
    return {f for f in os.listdir(SHM_DIR) if f.startswith("mg-")}


def _trace(n=40_000, seed=11):
    rng = np.random.default_rng(seed)
    ev = make_events(
        ip=rng.integers(0, 40, n),
        addr=rng.integers(0, 1 << 18, n) * 8,
        cls=rng.integers(0, 3, n).astype(np.uint8),
        fn=rng.integers(0, 6, n),
    )
    sid = np.sort(rng.integers(0, 37, n)).astype(np.int32)
    return ev, sid


@pytest.fixture(autouse=True)
def _no_preexisting_leaks():
    before = _live_segments()
    yield
    leaked = _live_segments() - before
    assert not leaked, f"test leaked shm segments: {sorted(leaked)}"


class TestPublishAttach:
    def test_round_trip(self):
        ev, sid = _trace(n=5000)
        slab = publish_shard(ev, sid)
        try:
            got_ev, got_sid = attach_shard(slab.ref(0, len(ev)))
            assert np.array_equal(got_ev, ev)
            assert np.array_equal(got_sid, sid)
            lo, hi = 1200, 4100
            part_ev, part_sid = attach_shard(slab.ref(lo, hi))
            assert np.array_equal(part_ev, ev[lo:hi])
            assert np.array_equal(part_sid, sid[lo:hi])
        finally:
            slab.release()
        assert active_segments() == []

    def test_no_sample_id(self):
        ev, _ = _trace(n=300)
        slab = publish_shard(ev)
        try:
            got_ev, got_sid = attach_shard(slab.ref(0, len(ev)))
            assert got_sid is None
            assert np.array_equal(got_ev, ev)
        finally:
            slab.release()

    def test_bad_range_rejected(self):
        ev, _ = _trace(n=100)
        slab = publish_shard(ev)
        try:
            with pytest.raises(ValueError, match="shard range"):
                slab.ref(50, 200)
            with pytest.raises(ValueError, match="shard range"):
                slab.ref(-1, 10)
        finally:
            slab.release()

    def test_sample_id_length_mismatch(self):
        ev, _ = _trace(n=100)
        with pytest.raises(ValueError, match="sample_id"):
            publish_shard(ev, np.zeros(7, dtype=np.int32))

    def test_release_is_idempotent(self):
        ev, _ = _trace(n=64)
        slab = publish_shard(ev)
        slab.release()
        slab.release()
        assert active_segments() == []

    def test_metrics_balance(self):
        metrics = MetricsRegistry()
        ev, sid = _trace(n=1000)
        for _ in range(3):
            publish_shard(ev, sid, metrics=metrics).release()
        assert metrics.counter("shm.segments_created").value == 3
        assert metrics.counter("shm.segments_released").value == 3
        # the gauge is a high-watermark: sequential publish/release peaks at 1
        assert metrics.gauge("shm.active_segments").value == 1
        assert metrics.counter("shm.bytes_published").value >= 3 * ev.nbytes


class TestRegistry:
    def test_release_all_unlinks_everything(self):
        reg = SegmentRegistry()
        ev, _ = _trace(n=128)
        slabs = [publish_shard(ev) for _ in range(3)]
        for s in slabs:
            reg.track(s)
        assert len(reg.names()) == 3
        # pull them out of the module registry so only `reg` owns them
        from repro.core import shm as shm_mod

        for s in slabs:
            shm_mod._REGISTRY.untrack(s.name)
        assert reg.release_all() == 3
        assert reg.names() == []

    def test_sigterm_unlinks_segments(self, tmp_path):
        """A SIGTERMed publisher must leave no /dev/shm entry behind."""
        script = (
            "import os, signal, sys, time\n"
            "import numpy as np\n"
            "from repro.core.shm import publish_shard\n"
            "from repro.trace.event import make_events\n"
            "ev = make_events(ip=1, addr=np.arange(1000, dtype=np.uint64), cls=2)\n"
            "slab = publish_shard(ev)\n"
            "print(slab.name, flush=True)\n"
            "time.sleep(30)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.getcwd(),
        )
        try:
            name = proc.stdout.readline().strip()
            assert name.startswith("mg-")
            assert name in _live_segments()
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        finally:
            proc.kill()
        assert name not in _live_segments()


class TestEngineLifecycle:
    def test_run_passes_releases_segments(self):
        ev, sid = _trace()
        before = _live_segments()
        with ParallelEngine(workers=2, chunk_size=8192, shm=True) as engine:
            engine.run_passes(ev, ["diagnostics", "captures", "reuse"], sample_id=sid)
            assert active_segments() == []
        assert _live_segments() - before == set()

    def test_shm_matches_pickle(self):
        ev, sid = _trace()
        requests = ["diagnostics", "captures", "reuse", "hotspot", "roi"]
        with ParallelEngine(workers=2, chunk_size=8192, shm=True) as e:
            a = e.run_passes(ev, requests, sample_id=sid)
        with ParallelEngine(workers=2, chunk_size=8192, shm=False) as e:
            b = e.run_passes(ev, requests, sample_id=sid)
        assert repr(a["diagnostics"]) == repr(b["diagnostics"])
        assert a["captures"] == b["captures"]
        assert np.array_equal(a["reuse"].counts, b["reuse"].counts)
        assert repr(a["roi"]) == repr(b["roi"])

    def test_analyze_file_releases_segments(self, tmp_path):
        ev, sid = _trace()
        path = tmp_path / "t.npz"
        write_trace(path, ev, TraceMeta(module="shm-test", period=1000), sample_id=sid)
        before = _live_segments()
        with ParallelEngine(workers=2, chunk_size=8192, shm=True) as engine:
            fa = engine.analyze_file(path)
        assert fa.n_events == len(ev)
        assert active_segments() == []
        assert _live_segments() - before == set()

    def test_two_engines_one_archive(self, tmp_path):
        """Concurrent engines on one archive must not cross-release or
        leak each other's segments, and must agree on every result."""
        ev, sid = _trace()
        path = tmp_path / "t.npz"
        write_trace(path, ev, TraceMeta(module="shm-test", period=1000), sample_id=sid)
        before = _live_segments()
        results: dict[int, object] = {}
        errors: list[BaseException] = []

        def run(idx: int) -> None:
            try:
                with ParallelEngine(workers=2, chunk_size=8192, shm=True) as e:
                    results[idx] = e.analyze_file(path)
            except BaseException as exc:  # noqa: BLE001 - report in main thread
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        a, b = results[0], results[1]
        assert a.n_events == b.n_events == len(ev)
        assert repr(a.diagnostics) == repr(b.diagnostics)
        assert np.array_equal(a.reuse.counts, b.reuse.counts)
        assert active_segments() == []
        assert _live_segments() - before == set()

    def test_shm_kill_switch_env(self, monkeypatch):
        monkeypatch.setenv("MEMGAZE_SHM", "0")
        assert ParallelEngine(workers=2).shm is False
        monkeypatch.setenv("MEMGAZE_SHM", "off")
        assert ParallelEngine(workers=2).shm is False
        monkeypatch.delenv("MEMGAZE_SHM")
        assert ParallelEngine(workers=2).shm is True
        # explicit argument beats the environment
        monkeypatch.setenv("MEMGAZE_SHM", "0")
        assert ParallelEngine(workers=2, shm=True).shm is True


# -- worker crash -------------------------------------------------------------


class _KillWorkerPass:
    """A pass whose update SIGKILLs the evaluating pool worker."""

    name = "test-kill-worker"
    requires = ()
    provides = ""
    defaults = {"parent_pid": -1}
    needs = ()
    whole_without_samples = False
    description = "test helper: kill the worker mid-scan"

    def init(self, params):
        return 0

    def update(self, partial, chunk, params):
        if os.getpid() != params["parent_pid"]:
            os.kill(os.getpid(), signal.SIGKILL)
        return partial

    def merge(self, a, b):
        return a + b

    def finalize(self, partial, ctx, params):
        return partial


@pytest.mark.faults
class TestWorkerCrash:
    def test_killed_worker_releases_segments(self):
        """SIGKILLing a worker mid-scan breaks the pool — but the
        parent's ``finally`` must still unlink every published segment."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.core.passes import register_pass, unregister_pass

        register_pass(_KillWorkerPass())
        try:
            ev, sid = _trace()
            before = _live_segments()
            with ParallelEngine(workers=2, chunk_size=8192, shm=True) as engine:
                with pytest.raises(BrokenProcessPool):
                    engine.run_passes(
                        ev,
                        [("test-kill-worker", {"parent_pid": os.getpid()})],
                        sample_id=sid,
                    )
            assert active_segments() == []
            assert _live_segments() - before == set()
        finally:
            unregister_pass("test-kill-worker")
