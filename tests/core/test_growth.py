"""Tests for footprint growth (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.growth import footprint_growth
from repro.trace.event import make_events


def _ev(addrs, n_const=0):
    return make_events(ip=1, addr=np.asarray(addrs, dtype=np.uint64), cls=2, n_const=n_const)


class TestGrowth:
    def test_streaming_is_one(self):
        assert footprint_growth(_ev([1, 2, 3, 4])) == 1.0

    def test_full_reuse_tends_to_zero(self):
        assert footprint_growth(_ev([7] * 100)) == 0.01

    def test_empty(self):
        assert footprint_growth(_ev([])) == 0.0

    def test_compression_denominator(self):
        # 2 records implying 2 extra constant loads each: window = 6
        ev = _ev([1, 2], n_const=2)
        # footprint = 2 unique + 1 constant unit = 3; dF = 3/6
        assert footprint_growth(ev) == pytest.approx(0.5)

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            footprint_growth(np.zeros(4))


@given(addrs=st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_growth_bounded(addrs):
    """Property: 0 < dF <= 1 for any non-empty uncompressed trace."""
    g = footprint_growth(_ev(addrs))
    assert 0.0 < g <= 1.0
