"""Unit and property tests for reuse intervals and reuse distance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reuse import (
    max_reuse_distance,
    mean_reuse_distance,
    region_reuse,
    reuse_distances,
    reuse_intervals,
)
from repro.trace.event import make_events


def _ev(addrs, cls=2):
    return make_events(ip=1, addr=np.asarray(addrs, dtype=np.uint64), cls=cls)


def _naive_distance(addrs, block=1):
    """Reference O(n^2) stack-distance implementation."""
    ids = [a // block for a in addrs]
    out = []
    last: dict[int, int] = {}
    for i, b in enumerate(ids):
        if b in last:
            out.append(len(set(ids[last[b] + 1 : i])))
        else:
            out.append(-1)
        last[b] = i
    return out


class TestReuseIntervals:
    def test_basic(self):
        assert list(reuse_intervals(_ev([1, 2, 1, 1]))) == [-1, -1, 2, 1]

    def test_blocks(self):
        # 0 and 8 share a 64 B block
        assert list(reuse_intervals(_ev([0, 8]), block=64)) == [-1, 1]

    def test_sample_boundary_resets(self):
        ev = _ev([5, 5, 5, 5])
        sid = np.array([0, 0, 1, 1])
        assert list(reuse_intervals(ev, sample_id=sid)) == [-1, 1, -1, 1]

    def test_empty(self):
        assert len(reuse_intervals(_ev([]))) == 0


class TestReuseDistances:
    def test_immediate_reuse_is_zero(self):
        assert list(reuse_distances(_ev([4, 4]))) == [-1, 0]

    def test_counts_unique_between(self):
        # between the two 1s: blocks {2, 3} -> D = 2
        assert list(reuse_distances(_ev([1, 2, 3, 2, 1]))) == [-1, -1, -1, 1, 2]

    def test_distance_le_interval(self):
        ev = _ev([1, 2, 2, 2, 1])
        d = reuse_distances(ev)
        ri = reuse_intervals(ev)
        mask = d >= 0
        assert np.all(d[mask] <= ri[mask])

    def test_sample_boundary_resets(self):
        ev = _ev([1, 2, 1, 1, 2, 1])
        sid = np.array([0, 0, 0, 1, 1, 1])
        d = reuse_distances(ev, sample_id=sid)
        assert list(d) == [-1, -1, 1, -1, -1, 1]

    def test_mismatched_sample_id(self):
        with pytest.raises(ValueError):
            reuse_distances(_ev([1, 2]), sample_id=np.array([0]))


class TestAggregates:
    def test_mean_over_reusing_only(self):
        # distances: -1, -1, 1, 0 -> mean of (1, 0) = 0.5
        assert mean_reuse_distance(_ev([1, 2, 1, 1]), block=1) == 0.5

    def test_mean_no_reuse(self):
        assert mean_reuse_distance(_ev([1, 2, 3]), block=1) == 0.0

    def test_max(self):
        assert max_reuse_distance(_ev([1, 2, 3, 1]), block=1) == 2
        assert max_reuse_distance(_ev([1, 2]), block=1) == 0

    def test_region_restriction(self):
        # region [0, 10): only addresses 1 and 2
        ev = _ev([1, 100, 1, 2, 100, 2])
        d_mean, d_max, a = region_reuse(ev, 0, 10, block=1)
        assert a == 4
        # the 1-reuse spans {100} -> D=1; the 2-reuse spans {100} -> D=1
        assert d_mean == 1.0
        assert d_max == 1

    def test_region_excludes_constants(self):
        ev = make_events(ip=1, addr=[5, 5], cls=[0, 0])
        _, _, a = region_reuse(ev, 0, 10)
        assert a == 0


@settings(max_examples=60)
@given(
    addrs=st.lists(st.integers(0, 30), max_size=120),
    block=st.sampled_from([1, 4, 64]),
)
def test_matches_naive_reference(addrs, block):
    """Property: Fenwick algorithm equals the O(n^2) reference."""
    got = reuse_distances(_ev(addrs), block=block)
    want = _naive_distance(addrs, block)
    assert list(got) == want


@given(addrs=st.lists(st.integers(0, 20), max_size=100))
def test_distance_bounded_by_footprint(addrs):
    """Property: every D is below the number of distinct blocks."""
    d = reuse_distances(_ev(addrs))
    if len(addrs):
        assert d.max() < max(1, len(set(addrs)))


# -- kernel equivalence -------------------------------------------------------


class TestKernelEquivalence:
    """The vectorised kernel and the Fenwick reference are bit-identical."""

    def _random_trace(self, rng, n=3000):
        ev = _ev(rng.integers(0, 200, n))
        sid = np.sort(rng.integers(0, 17, n)).astype(np.int32)
        return ev, sid

    @pytest.mark.parametrize("block", [1, 64, 4096])
    def test_vector_equals_fenwick(self, make_rng, block):
        rng = make_rng(f"kernel-eq-{block}")
        ev, sid = self._random_trace(rng)
        v = reuse_distances(ev, block, sid, kernel="vector")
        f = reuse_distances(ev, block, sid, kernel="fenwick")
        assert np.array_equal(v, f)

    def test_vector_equals_fenwick_no_samples(self, make_rng):
        rng = make_rng("kernel-eq-flat")
        ev = _ev(rng.integers(0, 50, 2000))
        assert np.array_equal(
            reuse_distances(ev, kernel="vector"),
            reuse_distances(ev, kernel="fenwick"),
        )

    def test_non_monotone_sample_ids(self, make_rng):
        """Boundaries come from id *changes*, not sorted ids — both
        kernels must cut windows identically for non-monotone ids."""
        rng = make_rng("kernel-eq-nonmono")
        ev = _ev(rng.integers(0, 30, 500))
        sid = rng.integers(0, 5, 500).astype(np.int32)  # deliberately unsorted
        assert np.array_equal(
            reuse_distances(ev, 1, sid, kernel="vector"),
            reuse_distances(ev, 1, sid, kernel="fenwick"),
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            reuse_distances(_ev([1, 2]), kernel="gpu")

    def test_env_default(self, monkeypatch):
        from repro.core.reuse import default_reuse_kernel

        monkeypatch.setenv("MEMGAZE_REUSE_KERNEL", "fenwick")
        assert default_reuse_kernel() == "fenwick"
        monkeypatch.delenv("MEMGAZE_REUSE_KERNEL")
        assert default_reuse_kernel() == "vector"
        monkeypatch.setenv("MEMGAZE_REUSE_KERNEL", "bogus")
        with pytest.raises(ValueError, match="MEMGAZE_REUSE_KERNEL"):
            default_reuse_kernel()


@settings(max_examples=60)
@given(
    addrs=st.lists(st.integers(0, 30), max_size=120),
    block=st.sampled_from([1, 4, 64]),
)
def test_vector_kernel_matches_naive(addrs, block):
    """Property: the vectorised kernel equals the O(n^2) reference."""
    got = reuse_distances(_ev(addrs), block=block, kernel="vector")
    assert list(got) == _naive_distance(addrs, block)
