"""Zero-event traces must produce well-defined zeros, never NaN or a crash.

An empty trace is not an error: a filtered window, an all-constant
sample, or a freshly created archive can all present zero events to any
metric. Every serial function, every registered pass (through the fused
scan and the engine), and the streamed :meth:`analyze_file` path must
return their merge identities — and the report CLI must say "trace is
empty" instead of dividing by zero.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.diagnostics import compute_diagnostics
from repro.core.growth import footprint_growth
from repro.core.hotspot import rank_hotspots
from repro.core.metrics import (
    captures_survivals,
    estimated_footprint,
    footprint,
    footprint_by_class,
)
from repro.core.parallel import ParallelEngine
from repro.core.passes import get_pass, list_passes, scan_chunk, schedule_passes
from repro.core.reuse import (
    ReuseHistogram,
    max_reuse_distance,
    mean_reuse_distance,
    reuse_distances,
    reuse_histogram,
    reuse_intervals,
)
from repro.trace.compress import compression_ratio
from repro.trace.event import EVENT_DTYPE, LoadClass, make_events
from repro.trace.tracefile import TraceMeta, write_trace

EMPTY = np.empty(0, dtype=EVENT_DTYPE)
EMPTY_SID = np.empty(0, dtype=np.int32)

#: params that satisfy HeatmapPass's ``needs`` on an empty trace
HEATMAP_PARAMS = {
    "base": 0, "size": 1 << 16, "page_size": 1 << 10,
    "t_edges": np.array([0.0, 1.0]), "n_pages": 64, "n_bins": 1,
}


def _request(name):
    return (name, HEATMAP_PARAMS) if name == "heatmap" else name


class TestSerialFunctions:
    def test_footprint_zero(self):
        assert footprint(EMPTY) == 0
        assert footprint(EMPTY, block=64) == 0

    def test_footprint_by_class_all_zero(self):
        by_cls = footprint_by_class(EMPTY)
        assert set(by_cls) == set(LoadClass)
        assert all(v == 0 for v in by_cls.values())

    def test_captures_survivals_zero(self):
        assert captures_survivals(EMPTY) == (0, 0)

    def test_estimated_footprint_zero(self):
        assert estimated_footprint(EMPTY, rho=5.0) == 0

    def test_diagnostics_no_nan(self):
        d = compute_diagnostics(EMPTY, rho=3.0)
        for field in ("A_est", "F_est", "dF", "F_str_pct", "A_const_pct"):
            value = float(getattr(d, field))
            assert math.isfinite(value), f"{field} must be finite, got {value}"
            assert value == 0.0

    def test_compression_ratio_identity(self):
        assert compression_ratio(EMPTY) == 1.0

    def test_footprint_growth_zero(self):
        assert footprint_growth(EMPTY) == 0.0

    def test_reuse_functions_zero(self):
        assert reuse_intervals(EMPTY).shape == (0,)
        assert reuse_distances(EMPTY).shape == (0,)
        assert mean_reuse_distance(EMPTY) == 0.0
        assert max_reuse_distance(EMPTY) == 0
        h = reuse_histogram(EMPTY)
        assert h.n_cold == 0 and h.n_reuse == 0 and h.d_sum == 0
        assert h.mean == 0.0

    def test_rank_hotspots_empty(self):
        assert rank_hotspots(EMPTY) == []


class TestCacheSim:
    """Cache simulation must hold the zero-identity too (not NaN/raise)."""

    def test_cache_stats_ratios_are_zero(self):
        from repro.core.cachesim import CacheConfig, simulate_cache

        stats = simulate_cache(EMPTY, CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        assert stats.n_accesses == 0 and stats.n_hits == 0
        assert stats.hit_ratio == 0.0
        for cls in LoadClass:
            assert stats.class_hit_ratio(cls) == 0.0

    def test_class_hit_ratio_for_absent_class(self):
        from repro.core.cachesim import CacheConfig, simulate_cache

        ev = make_events(
            ip=np.zeros(8, dtype=np.int64),
            addr=np.arange(8) * 64,
            cls=np.full(8, int(LoadClass.STRIDED), dtype=np.uint8),
        )
        stats = simulate_cache(ev, CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        # classes with no accesses divide 0/0 — must be 0.0, not a crash
        assert stats.class_hit_ratio(LoadClass.IRREGULAR) == 0.0
        assert stats.class_hit_ratio(LoadClass.CONSTANT) == 0.0

    def test_sweep_rows_on_empty_trace(self):
        from repro.core.cachesim import (
            SweepPartial,
            sweep_configs,
            sweep_finalize,
            sweep_update,
        )

        grid = sweep_configs()
        rows = sweep_finalize(sweep_update(SweepPartial(grid), EMPTY), grid)
        assert len(rows) == len(grid)
        for row in rows:
            assert row.n_accesses == 0 and row.n_hits == 0
            assert row.hit_ratio == 0.0 and row.predicted_hit_ratio == 0.0
            assert row.accesses_by_class == {} and row.hits_by_class == {}


class TestEveryPass:
    @pytest.mark.parametrize("name", [p.name for p in list_passes()])
    def test_scan_chunk_empty(self, name):
        scheduled = schedule_passes([_request(name)])
        partials, _ = scan_chunk(EMPTY, EMPTY_SID, [r.spec for r in scheduled], None)
        identities = [get_pass(r.name).init(r.params) for r in scheduled]
        for partial, identity, r in zip(partials, identities, scheduled):
            merged = get_pass(r.name).merge(partial, identity)
            assert type(merged) is type(partial)

    @pytest.mark.parametrize("name", [p.name for p in list_passes()])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_engine_run_passes_empty(self, name, workers):
        with ParallelEngine(workers=workers) as eng:
            results = eng.run_passes(
                EMPTY, [_request(name)], sample_id=EMPTY_SID, rho=2.0
            )
        assert name in results

    def test_reuse_result_is_identity(self):
        with ParallelEngine(workers=1) as eng:
            h = eng.run_passes(EMPTY, ["reuse"], sample_id=EMPTY_SID)["reuse"]
        assert isinstance(h, ReuseHistogram)
        assert h.merge(ReuseHistogram.identity()).d_sum == 0
        assert h.scope == "sample"

    def test_empty_chunk_among_nonempty_shards(self, rng):
        ev = make_events(
            ip=rng.integers(0, 9, 600), addr=rng.integers(0, 1 << 14, 600),
            cls=np.ones(600, dtype=np.uint8),
        )
        sid = (np.arange(600) // 100).astype(np.int32)
        scheduled = schedule_passes(["diagnostics", "captures", "reuse"])
        specs = [r.spec for r in scheduled]
        whole, _ = scan_chunk(ev, sid, specs, None)
        hole, _ = scan_chunk(EMPTY, EMPTY_SID, specs, None)
        from repro.core.passes import RunContext, finalize_schedule, merge_partial_lists

        padded = merge_partial_lists(
            merge_partial_lists(hole, whole, specs), hole, specs
        )
        ctx = RunContext(rho=1.0, fn_names={})
        got = finalize_schedule(scheduled, padded, ctx)
        ref = finalize_schedule(scheduled, whole, ctx)
        assert got["diagnostics"] == ref["diagnostics"]
        assert got["captures"] == ref["captures"]
        assert got["reuse"].counts.tolist() == ref["reuse"].counts.tolist()
        assert got["reuse"].d_sum == ref["reuse"].d_sum
        assert got["reuse"].n_cold == ref["reuse"].n_cold


class TestEmptyArchive:
    def _write_empty(self, tmp_path, with_sid):
        meta = TraceMeta(
            module="empty", kind="sampled", period=1000, buffer_capacity=256,
            n_loads_total=0, n_samples=0,
        )
        path = tmp_path / "empty.npz"
        write_trace(path, EMPTY, meta, EMPTY_SID if with_sid else None)
        return path

    @pytest.mark.parametrize("with_sid", [True, False])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_analyze_file_empty(self, tmp_path, with_sid, workers):
        path = self._write_empty(tmp_path, with_sid)
        with ParallelEngine(workers=workers) as eng:
            fa = eng.analyze_file(path)
        assert fa.n_events == 0
        assert fa.captures == 0 and fa.survivals == 0
        assert fa.rho == 1.0
        assert math.isfinite(fa.diagnostics.dF)
        assert fa.reuse.n_reuse == 0 and fa.reuse.mean == 0.0
        assert fa.reuse_scope == "sample", "an empty trace is not degraded"

    def test_analyze_file_empty_with_extra_passes(self, tmp_path):
        path = self._write_empty(tmp_path, True)
        with ParallelEngine(workers=1) as eng:
            fa = eng.analyze_file(path, passes=["hotspot", "roi"])
        assert fa.pass_results["hotspot"] == []

    def test_report_cli_says_empty(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_empty(tmp_path, True)
        assert main(["report", str(path)]) == 1
        assert "trace is empty" in capsys.readouterr().out
