"""Unit and property tests for the Fenwick tree."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util.fenwick import FenwickTree


class TestBasics:
    def test_empty_tree(self):
        t = FenwickTree(0)
        assert t.size == 0
        assert t.total() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_single_slot(self):
        t = FenwickTree(1)
        t.add(0, 5)
        assert t.prefix_sum(0) == 5
        assert t.total() == 5

    def test_point_updates_accumulate(self):
        t = FenwickTree(4)
        t.add(2, 3)
        t.add(2, 4)
        assert t.range_sum(2, 2) == 7

    def test_negative_deltas(self):
        t = FenwickTree(8)
        t.add(3, 1)
        t.add(3, -1)
        assert t.total() == 0

    def test_prefix_sum_empty_prefix(self):
        t = FenwickTree(4)
        t.add(0, 9)
        assert t.prefix_sum(-1) == 0

    def test_range_sum_empty_range(self):
        t = FenwickTree(4)
        t.add(1, 7)
        assert t.range_sum(3, 2) == 0

    def test_out_of_range_add(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4, 1)
        with pytest.raises(IndexError):
            t.add(-1, 1)

    def test_out_of_range_query(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.prefix_sum(4)


@given(
    updates=st.lists(
        st.tuples(st.integers(0, 63), st.integers(-5, 5)), min_size=0, max_size=80
    ),
    query=st.tuples(st.integers(0, 63), st.integers(0, 63)),
)
def test_matches_naive_array(updates, query):
    """Property: prefix and range sums match a plain array."""
    t = FenwickTree(64)
    ref = np.zeros(64, dtype=np.int64)
    for i, d in updates:
        t.add(i, d)
        ref[i] += d
    lo, hi = min(query), max(query)
    assert t.prefix_sum(hi) == ref[: hi + 1].sum()
    assert t.range_sum(lo, hi) == ref[lo : hi + 1].sum()
    assert t.total() == ref.sum()
