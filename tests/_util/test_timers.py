"""Tests for the wall-clock timer and the per-stage timing registry."""

import time

from repro._util.timers import StageTimers, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_restart(self):
        with Timer() as t:
            pass
        t.restart()
        assert t.elapsed == 0.0


class TestStageTimers:
    def test_stage_accumulates(self):
        timers = StageTimers()
        with timers.stage("a", items=10):
            pass
        with timers.stage("a", items=5):
            pass
        s = timers.stats["a"]
        assert s.calls == 2 and s.items == 15 and s.seconds >= 0.0

    def test_add_and_throughput(self):
        timers = StageTimers()
        timers.add("scan", 2.0, items=1000)
        assert timers.stats["scan"].throughput == 500.0

    def test_throughput_zero_when_no_time(self):
        timers = StageTimers()
        timers.add("x", 0.0, items=5)
        assert timers.stats["x"].throughput == 0.0

    def test_merge_registries(self):
        a, b = StageTimers(), StageTimers()
        a.add("s", 1.0, items=1)
        b.add("s", 2.0, items=2)
        b.add("t", 3.0)
        a.merge(b)
        assert a.stats["s"].seconds == 3.0 and a.stats["s"].items == 3
        assert a.stats["t"].calls == 1

    def test_reset(self):
        timers = StageTimers()
        timers.add("s", 1.0)
        timers.reset()
        assert timers.stats == {}

    def test_report_renders(self):
        timers = StageTimers()
        assert "(no stages recorded)" in timers.report()
        timers.add("merge", 0.5, items=100)
        out = timers.report(title="t")
        assert "== t ==" in out and "merge" in out and "items/s" in out
