"""Tests for the wall-clock timer and the per-stage timing registry."""

import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro._util.timers import StageTimers, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_restart(self):
        with Timer() as t:
            pass
        t.restart()
        assert t.elapsed == 0.0


class TestStageTimers:
    def test_stage_accumulates(self):
        timers = StageTimers()
        with timers.stage("a", items=10):
            pass
        with timers.stage("a", items=5):
            pass
        s = timers.stats["a"]
        assert s.calls == 2 and s.items == 15 and s.seconds >= 0.0

    def test_add_and_throughput(self):
        timers = StageTimers()
        timers.add("scan", 2.0, items=1000)
        assert timers.stats["scan"].throughput == 500.0

    def test_throughput_zero_when_no_time(self):
        timers = StageTimers()
        timers.add("x", 0.0, items=5)
        assert timers.stats["x"].throughput == 0.0

    def test_merge_registries(self):
        a, b = StageTimers(), StageTimers()
        a.add("s", 1.0, items=1)
        b.add("s", 2.0, items=2)
        b.add("t", 3.0)
        a.merge(b)
        assert a.stats["s"].seconds == 3.0 and a.stats["s"].items == 3
        assert a.stats["t"].calls == 1

    def test_reset(self):
        timers = StageTimers()
        timers.add("s", 1.0)
        timers.reset()
        assert timers.stats == {}

    def test_report_renders(self):
        timers = StageTimers()
        assert "(no stages recorded)" in timers.report()
        timers.add("merge", 0.5, items=100)
        out = timers.report(title="t")
        assert "== t ==" in out and "merge" in out and "items/s" in out

    def test_as_records_roundtrips_through_json(self):
        timers = StageTimers()
        timers.add("plan", 0.25, items=4)
        timers.add("compute", 1.0, items=1000)
        records = json.loads(json.dumps(timers.as_records()))
        by_stage = {r["stage"]: r for r in records}
        assert by_stage["compute"]["throughput"] == 1000.0
        assert by_stage["plan"] == {
            "stage": "plan", "seconds": 0.25, "calls": 1, "items": 4,
            "throughput": 16.0,
        }


class TestMergeConcurrentWorkers:
    """Per-worker registries with overlapping stage names fold exactly.

    This is the situation the parallel engine creates: every pool
    worker accumulates the *same* stage names ("compute", "merge"), and
    the parent folds their registries in whatever order futures finish.
    """

    def _worker(self, worker_id: int) -> StageTimers:
        timers = StageTimers()
        for i in range(20):
            timers.add("compute", 0.001 * (worker_id + 1), items=100)
            if i % 2 == 0:
                timers.add("merge", 0.0005, items=1)
        timers.add(f"stage-only-in-{worker_id}", 0.01, items=worker_id)
        return timers

    def test_overlapping_stage_names_sum_exactly(self):
        n_workers = 8
        with ThreadPoolExecutor(max_workers=4) as pool:
            parts = list(pool.map(self._worker, range(n_workers)))
        merged = StageTimers()
        for part in parts:
            merged.merge(part)
        assert merged.stats["compute"].calls == 20 * n_workers
        assert merged.stats["compute"].items == 2000 * n_workers
        expected_seconds = sum(0.001 * (w + 1) * 20 for w in range(n_workers))
        assert abs(merged.stats["compute"].seconds - expected_seconds) < 1e-9
        assert merged.stats["merge"].calls == 10 * n_workers
        for w in range(n_workers):
            assert merged.stats[f"stage-only-in-{w}"].items == w

    def test_merge_order_does_not_matter(self):
        parts = [self._worker(w) for w in range(5)]
        forward, backward = StageTimers(), StageTimers()
        for p in parts:
            forward.merge(p)
        for p in reversed(parts):
            backward.merge(p)
        assert forward.as_records() != []
        assert sorted(map(str, forward.as_records())) == sorted(
            map(str, backward.as_records())
        )
