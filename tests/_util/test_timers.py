"""Tests for the wall-clock timer."""

import time

from repro._util.timers import Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_restart(self):
        with Timer() as t:
            pass
        t.restart()
        assert t.elapsed == 0.0
