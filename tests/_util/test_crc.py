"""Equivalence of the zero-copy CRC sweep with the tobytes reference.

The health layer's checksums are content-digest inputs (cache keys,
golden archives), so :func:`repro._util.crc.crc32_chunks` must agree
bit-for-bit with the original ``chunk.tobytes()`` sweep on every dtype
and chunk geometry the archive format uses.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro._util.crc import crc32_chunks, crc32_of
from repro.trace.event import make_events
from repro.trace.tracefile import HEALTH_CHUNK_EVENTS, _health_record


def _reference(arr: np.ndarray, step: int, at_least_one: bool) -> list[int]:
    stop = max(len(arr), 1) if at_least_one else len(arr)
    return [zlib.crc32(arr[i : i + step].tobytes()) for i in range(0, stop, step)]


def _event_array(rng, n):
    return make_events(
        ip=rng.integers(0, 1 << 40, n),
        addr=rng.integers(0, 1 << 44, n),
        cls=rng.integers(0, 3, n).astype(np.uint8),
        fn=rng.integers(0, 7, n).astype(np.uint32),
    )


@pytest.mark.parametrize("n", [0, 1, 16, 17, 64, 1000])
@pytest.mark.parametrize("step", [1, 7, 16, 1024])
def test_structured_dtype_matches_reference(make_rng, n, step):
    events = _event_array(make_rng("crc-events"), n)
    assert crc32_chunks(events, step) == _reference(events, step, False)
    assert crc32_chunks(events, step, at_least_one=True) == _reference(
        events, step, True
    )


@pytest.mark.parametrize("dtype", [np.int32, np.uint8, np.float64])
def test_plain_dtypes_match_reference(make_rng, dtype):
    rng = make_rng("crc-plain")
    arr = rng.integers(0, 100, 333).astype(dtype)
    for step in (1, 50, 333, 1000):
        assert crc32_chunks(arr, step) == _reference(arr, step, False)


def test_empty_array_quirk():
    """Empty + at_least_one yields exactly one CRC of zero bytes."""
    empty = np.empty(0, dtype=np.int32)
    assert crc32_chunks(empty, 8) == []
    assert crc32_chunks(empty, 8, at_least_one=True) == [zlib.crc32(b"")]


def test_noncontiguous_input_is_packed_first(make_rng):
    arr = make_rng("crc-strided").integers(0, 100, 64).astype(np.int64)
    view = arr[::2]
    assert not view.flags.c_contiguous
    assert crc32_chunks(view, 5) == _reference(np.ascontiguousarray(view), 5, False)
    assert crc32_of(view) == zlib.crc32(view.tobytes())


def test_readonly_buffer(make_rng):
    """frombuffer views (the archive read path) are read-only buffers."""
    events = _event_array(make_rng("crc-readonly"), 32)
    ro = np.frombuffer(events.tobytes(), dtype=events.dtype)
    assert not ro.flags.writeable
    assert crc32_chunks(ro, 10) == _reference(events, 10, False)


def test_step_validation():
    with pytest.raises(ValueError, match="step"):
        crc32_chunks(np.zeros(4, dtype=np.int32), 0)


def test_health_record_layout_unchanged(make_rng):
    """The writer's record keeps the legacy per-chunk layout exactly."""
    rng = make_rng("crc-health")
    for n in (0, 100, HEALTH_CHUNK_EVENTS + 5):
        events = _event_array(rng, n)
        sid = np.repeat(
            np.arange(max(1, n // 64 + 1), dtype=np.int32), 64
        )[:n]
        rec = _health_record(events, sid)
        assert rec["n_events"] == n
        assert rec["events_crc"] == _reference(events, HEALTH_CHUNK_EVENTS, True)
        assert rec["sample_id_crc"] == _reference(sid, HEALTH_CHUNK_EVENTS, True)
        assert _health_record(events, None)["sample_id_crc"] is None
