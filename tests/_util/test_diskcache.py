"""The persistent on-disk cache: atomicity, corruption tolerance, eviction.

Covers the durability contract :mod:`repro._util.diskcache` promises to
the artifact store above it: falsy values round-trip (MISS is a
sentinel, not None), any damage is a journaled miss that removes the
entry, and the mtime-LRU eviction order follows *use*, not insertion.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro._util.diskcache import MISS, DiskCache
from repro.obs.journal import RunJournal, read_journal
from repro.obs.metrics import MetricsRegistry

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "obs"))
import faults  # noqa: E402


class TestRoundTrip:
    def test_value_round_trips(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        c.put("a", {"x": np.arange(5), "y": "text"})
        got = c.get("a")
        assert got["y"] == "text"
        np.testing.assert_array_equal(got["x"], np.arange(5))

    def test_falsy_values_are_not_misses(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        for name, value in [("zero", 0), ("empty", []), ("none", None)]:
            c.put(name, value)
            got = c.get(name)
            assert got is not MISS
            assert got == value or (got is None and value is None)

    def test_absent_entry_is_miss(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        assert c.get("nothing") is MISS
        assert c.misses == 1 and c.hits == 0

    def test_overwrite_replaces(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        c.put("a", 1)
        c.put("a", 2)
        assert c.get("a") == 2
        assert c.stats()["entries"] == 1

    def test_invalid_names_rejected(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        for bad in ["", "../escape", "a/b", ".hidden"]:
            with pytest.raises(ValueError, match="invalid cache entry name"):
                c.put(bad, 1)

    def test_names_listing_and_prefix(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        for n in ["partial-a", "partial-b", "state-a"]:
            c.put(n, n)
        assert c.names() == ["partial-a", "partial-b", "state-a"]
        assert c.names("state-") == ["state-a"]

    def test_delete(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        c.put("a", 1)
        assert c.delete("a") is True
        assert c.delete("a") is False
        assert c.get("a") is MISS


class TestCorruption:
    @pytest.mark.faults
    def test_bit_flip_is_journaled_miss_and_removed(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        c = DiskCache(tmp_path / "c", journal=RunJournal(jpath))
        c.put("a", list(range(1000)))
        (entry,) = list((tmp_path / "c").glob("*.mgc"))
        faults.flip_bytes(entry, offset_fraction=0.5)
        assert c.get("a") is MISS
        assert c.corrupt == 1
        assert not entry.exists(), "damaged entry must be removed"
        warnings = [r for r in read_journal(jpath) if r.get("event") == "warning"]
        assert any("corrupt cache entry" in w["message"] for w in warnings)

    @pytest.mark.faults
    def test_truncated_header_is_miss(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        c.put("a", 123)
        (entry,) = list((tmp_path / "c").glob("*.mgc"))
        entry.write_bytes(entry.read_bytes()[:3])
        assert c.get("a") is MISS
        assert c.corrupt == 1

    @pytest.mark.faults
    def test_foreign_file_is_miss(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        c.put("a", 1)  # creates the directory
        (tmp_path / "c" / "b.mgc").write_bytes(b"not a cache entry at all")
        assert c.get("b") is MISS
        assert c.get("a") == 1, "damage to one entry must not affect others"

    def test_corruption_counted_in_metrics(self, tmp_path):
        m = MetricsRegistry()
        c = DiskCache(tmp_path / "c", metrics=m)
        c.put("a", 1)
        (entry,) = list((tmp_path / "c").glob("*.mgc"))
        entry.write_bytes(b"MGC1garbagegarbage")
        c.get("a")
        counters = m.as_dict()["counters"]
        assert counters["cache.corrupt"]["value"] == 1
        assert counters["cache.misses"]["value"] == 1


class TestEviction:
    def _put_sized(self, c, name, kb, mtime):
        c.put(name, b"x" * (kb * 1024))
        path = c.root / (name + ".mgc")
        os.utime(path, (mtime, mtime))

    def test_lru_eviction_order_is_by_use(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        t0 = time.time() - 100
        self._put_sized(c, "old", 4, t0)
        self._put_sized(c, "mid", 4, t0 + 10)
        self._put_sized(c, "new", 4, t0 + 20)
        # a get() refreshes "old" — it becomes the most recently used
        assert c.get("old") is not MISS
        removed = c.prune(5 * 1024)
        assert removed == 2
        assert c.names() == ["old"], "recently-read entry must survive eviction"

    def test_put_evicts_when_over_budget(self, tmp_path):
        c = DiskCache(tmp_path / "c", max_bytes=10 * 1024)
        t0 = time.time() - 100
        self._put_sized(c, "a", 6, t0)
        c.put("b", b"y" * (6 * 1024))
        assert c.names() == ["b"], "oldest entry must be evicted on put"
        assert c.evictions == 1

    def test_prune_and_clear(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        for i in range(4):
            c.put(f"e{i}", i)
        assert c.prune(0) + c.clear() == 4  # prune removes all; clear finds none
        assert c.names() == []

    def test_clear_removes_stale_temp_files(self, tmp_path):
        c = DiskCache(tmp_path / "c")
        c.put("a", 1)
        stale = tmp_path / "c" / ".tmp-dead.mgc"
        stale.write_bytes(b"stale")
        c.clear()
        assert not stale.exists()

    def test_reader_racing_eviction_misses_cleanly(self, tmp_path):
        # two handles on one directory: one evicts while the other reads
        writer = DiskCache(tmp_path / "c")
        reader = DiskCache(tmp_path / "c")
        writer.put("a", 1)
        assert reader.get("a") == 1
        writer.prune(0)  # evict everything
        assert reader.get("a") is MISS
        assert reader.corrupt == 0, "a lost entry is an absent miss, not damage"

    def test_stats_on_missing_directory(self, tmp_path):
        c = DiskCache(tmp_path / "never-created")
        s = c.stats()
        assert s["entries"] == 0 and s["bytes"] == 0
        assert c.names() == []
        assert c.get("a") is MISS
