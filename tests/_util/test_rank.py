"""Exactness tests for the batched left-rank kernel.

:func:`repro._util.rank.count_le_left` is the primitive under the
vectorised reuse-distance kernel; its contract is *exact integer*
agreement with the obvious O(n^2) definition for any values, any
grouping, any size — including the adversarial shapes (all-equal
values, singleton groups, one giant group) the mergesort levels must
handle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro._util.rank import count_le_left


def _naive(values, groups=None):
    values = list(values)
    n = len(values)
    out = [0] * n
    for i in range(n):
        for j in range(i):
            if groups is not None and groups[j] != groups[i]:
                continue
            if values[j] <= values[i]:
                out[i] += 1
    return out


class TestUngrouped:
    def test_empty_and_singleton(self):
        assert list(count_le_left(np.empty(0, dtype=np.int64))) == []
        assert list(count_le_left(np.array([7]))) == [0]

    def test_sorted_input_counts_everything(self):
        a = np.arange(10)
        assert list(count_le_left(a)) == list(range(10))

    def test_reverse_sorted_counts_nothing(self):
        a = np.arange(10)[::-1].copy()
        assert list(count_le_left(a)) == [0] * 10

    def test_all_equal_ties_count(self):
        a = np.zeros(6, dtype=np.int64)
        assert list(count_le_left(a)) == [0, 1, 2, 3, 4, 5]

    def test_large_magnitudes_densified(self):
        # values near int64 extremes must not overflow the merge encoding
        a = np.array([2**62, -(2**62), 0, 2**62, -(2**62)], dtype=np.int64)
        assert list(count_le_left(a)) == _naive(a)


class TestGrouped:
    def test_counting_never_crosses_groups(self):
        vals = np.array([5, 1, 5, 1])
        groups = np.array([0, 0, 1, 1])
        assert list(count_le_left(vals, groups)) == [0, 0, 0, 0]

    def test_singleton_groups(self):
        vals = np.arange(8)
        groups = np.arange(8)
        assert list(count_le_left(vals, groups)) == [0] * 8

    def test_length_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            count_le_left(np.arange(4), np.arange(3))


@settings(max_examples=120)
@given(
    vals=st.lists(st.integers(-8, 8), max_size=150),
    group_lens=st.lists(st.integers(1, 40), max_size=12),
)
def test_matches_naive_reference(vals, group_lens):
    """Property: the batched mergesort equals the O(n^2) definition."""
    n = len(vals)
    a = np.array(vals, dtype=np.int64)
    groups = np.repeat(np.arange(len(group_lens)), group_lens)[:n]
    if len(groups) < n:
        groups = np.concatenate([groups, np.full(n - len(groups), len(group_lens))])
    got = count_le_left(a, groups if n else None)
    assert list(got) == _naive(vals, list(groups[:n]) if n else None)


@settings(max_examples=60)
@given(vals=st.lists(st.integers(0, 1000), max_size=200))
def test_ungrouped_matches_naive(vals):
    got = count_le_left(np.array(vals, dtype=np.int64))
    assert list(got) == _naive(vals)
