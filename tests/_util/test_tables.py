"""Tests for ASCII table rendering."""

import pytest

from repro._util.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        # header separator and rows share the same width
        assert len({len(l) for l in lines}) == 1

    def test_title(self):
        out = format_table(["c"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.5], [1234567.0], [0.0]])
        assert "0.5" in out
        assert "1.23e+06" in out
        assert "\n0" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
