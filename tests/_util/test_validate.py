"""Tests for argument validators."""

import pytest

from repro._util.validate import check_fraction, check_positive, check_power_of_two


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("x", 0, strict=False)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)


class TestCheckFraction:
    def test_bounds_inclusive(self):
        check_fraction("f", 0.0)
        check_fraction("f", 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)
        with pytest.raises(ValueError):
            check_fraction("f", -0.1)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("v", [1, 2, 64, 4096])
    def test_accepts_powers(self, v):
        check_power_of_two("p", v)

    @pytest.mark.parametrize("v", [0, -2, 3, 48])
    def test_rejects_non_powers(self, v):
        with pytest.raises(ValueError):
            check_power_of_two("p", v)
