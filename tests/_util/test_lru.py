"""Unit tests for the shared LRU cache (moved from core.parallel)."""

import pytest

from repro._util.lru import LRUCache


class TestCapacityAndEviction:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(ValueError):
            LRUCache(-3)

    def test_evicts_least_recently_used_first(self):
        c = LRUCache(3)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        c.put("d", 4)  # evicts a, the oldest
        assert c.get("a") is None
        assert c.get("b") == 2 and c.get("c") == 3 and c.get("d") == 4

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # a is now the most recent
        c.put("c", 3)  # evicts b, not a
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # overwrite refreshes a
        c.put("c", 3)  # evicts b
        assert c.get("b") is None
        assert c.get("a") == 10

    def test_eviction_order_is_fifo_without_touches(self):
        c = LRUCache(2)
        for k in "abcd":
            c.put(k, k)
        assert c.get("a") is None and c.get("b") is None
        assert c.get("c") == "c" and c.get("d") == "d"

    def test_len_and_contains(self):
        c = LRUCache(2)
        assert len(c) == 0
        c.put("a", 1)
        assert len(c) == 1 and "a" in c and "b" not in c
        c.put("b", 2)
        c.put("c", 3)
        assert len(c) == 2 and "a" not in c


class TestOverwrite:
    def test_overwrite_replaces_value_without_growth(self):
        c = LRUCache(4)
        c.put("k", 1)
        c.put("k", 2)
        assert c.get("k") == 2
        assert len(c) == 1


class TestCounters:
    def test_hit_and_miss_counters(self):
        c = LRUCache(2)
        assert c.get("a") is None
        assert (c.hits, c.misses) == (0, 1)
        c.put("a", 1)
        assert c.get("a") == 1
        assert (c.hits, c.misses) == (1, 1)
        assert c.get("gone") is None
        assert (c.hits, c.misses) == (1, 2)

    def test_contains_does_not_touch_counters(self):
        c = LRUCache(2)
        c.put("a", 1)
        _ = "a" in c
        _ = "b" in c
        assert (c.hits, c.misses) == (0, 0)


class TestBackwardCompatReexport:
    def test_core_parallel_still_exports_lru(self):
        from repro.core.parallel import LRUCache as Reexported

        assert Reexported is LRUCache
