"""The sorted-set kernels must be bit-identical to numpy's ``*1d`` ops.

The merge path of the engine's partials (``DiagnosticsPartial``,
``CapturesPartial``) replaced ``np.union1d``-family calls with these
kernels, relying on the sorted-unique invariant of partial state; this
suite pins the substitution: same values, same dtype, same order, for
every operator, including empty and disjoint inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.sortedset import (
    intersect_sorted,
    setdiff_sorted,
    setxor_sorted,
    union_sorted,
)

PAIRS = [
    (union_sorted, np.union1d),
    (intersect_sorted, np.intersect1d),
    (setxor_sorted, np.setxor1d),
    (setdiff_sorted, lambda a, b: np.setdiff1d(a, b, assume_unique=True)),
]


def _sets(rng, na, nb, lo=0, hi=1000):
    a = np.unique(rng.integers(lo, hi, na).astype(np.uint64))
    b = np.unique(rng.integers(lo, hi, nb).astype(np.uint64))
    return a, b


@pytest.mark.parametrize("ours,ref", PAIRS, ids=["union", "intersect", "xor", "diff"])
class TestAgainstNumpy:
    def test_overlapping(self, ours, ref, rng):
        a, b = _sets(rng, 400, 300)
        got, want = ours(a, b), ref(a, b)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)

    def test_disjoint(self, ours, ref):
        a = np.arange(0, 100, 2, dtype=np.uint64)
        b = np.arange(1, 101, 2, dtype=np.uint64)
        assert np.array_equal(ours(a, b), ref(a, b))

    def test_identical(self, ours, ref):
        a = np.arange(50, dtype=np.uint64)
        assert np.array_equal(ours(a, a), ref(a, a))

    @pytest.mark.parametrize("na,nb", [(0, 0), (0, 5), (5, 0)])
    def test_empty_sides(self, ours, ref, na, nb):
        a = np.arange(na, dtype=np.uint64)
        b = np.arange(nb, dtype=np.uint64)
        got, want = ours(a, b), ref(a, b)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)

    def test_extreme_values(self, ours, ref):
        m = np.iinfo(np.uint64).max
        a = np.array([0, 1, m - 1, m], dtype=np.uint64)
        b = np.array([1, 2, m], dtype=np.uint64)
        assert np.array_equal(ours(a, b), ref(a, b))


@settings(max_examples=150, deadline=None)
@given(
    a=st.lists(st.integers(0, 200), max_size=80),
    b=st.lists(st.integers(0, 200), max_size=80),
)
def test_property_equivalence(a, b):
    sa = np.unique(np.asarray(a, dtype=np.uint64))
    sb = np.unique(np.asarray(b, dtype=np.uint64))
    for ours, ref in PAIRS:
        assert np.array_equal(ours(sa, sb), ref(sa, sb))
