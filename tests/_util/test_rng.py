"""Tests for deterministic RNG derivation."""

import numpy as np

from repro._util.rng import derive_rng, spawn_rngs


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(7, "ctx").random(8)
        b = derive_rng(7, "ctx").random(8)
        assert np.array_equal(a, b)

    def test_different_context_different_stream(self):
        a = derive_rng(7, "alpha").random(8)
        b = derive_rng(7, "beta").random(8)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = derive_rng(1, "ctx").random(8)
        b = derive_rng(2, "ctx").random(8)
        assert not np.array_equal(a, b)

    def test_int_context(self):
        a = derive_rng(7, 1).random(4)
        b = derive_rng(7, 2).random(4)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert derive_rng(g, "anything") is g

    def test_none_seed_is_allowed(self):
        assert derive_rng(None, "x").random() is not None


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independence(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_deterministic(self):
        a1, _ = spawn_rngs(3, 2)
        a2, _ = spawn_rngs(3, 2)
        assert np.array_equal(a1.random(8), a2.random(8))
