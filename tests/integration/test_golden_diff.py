"""Golden regression fixtures for pairwise ``memgaze diff`` output.

The corpus refactor rebuilt ``memgaze diff`` as a two-cell special case
of the N-way path; these fixtures pin the pre-refactor byte-for-byte
output so the rebuild stays an internal change. They reuse the committed
golden archives from :mod:`tests.integration.test_golden_reports` (run
that module with ``--update-golden`` first if an archive is missing).

Intentional changes are re-frozen with::

    pytest tests/integration/test_golden_diff.py --update-golden

and reviewed like any other code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main as cli_main

GOLDEN = Path(__file__).parent / "golden"

#: (before case, after case, extra CLI args, expectation stem) — the
#: default rendering plus one --top variant, to pin both arg paths. Both
#: fixtures fit inside their top-N budget on purpose: truncated output
#: carries an omitted-rows note, which is additive-only and covered by
#: tests/core/test_diff.py rather than frozen bytes.
VARIANTS = [
    ("strided-mix", "irregular", [], "strided-mix.irregular"),
    ("irregular", "sidless", ["--top", "2"], "irregular.sidless"),
]


@pytest.mark.parametrize(
    "before,after,extra,stem", VARIANTS, ids=[stem for _, _, _, stem in VARIANTS]
)
def test_golden_diff(before, after, extra, stem, capsys, request):
    update = request.config.getoption("--update-golden")
    expected_path = GOLDEN / f"{stem}.diff.txt"
    for case in (before, after):
        if not (GOLDEN / f"{case}.npz").exists():
            pytest.fail(
                f"golden archive {case}.npz is missing — regenerate with "
                "test_golden_reports.py --update-golden and commit it"
            )

    rc = cli_main(
        ["diff", str(GOLDEN / f"{before}.npz"), str(GOLDEN / f"{after}.npz"), *extra]
    )
    out = capsys.readouterr().out
    assert rc == 0

    if update:
        expected_path.write_text(out, encoding="utf-8")
        return
    if not expected_path.exists():
        pytest.fail(
            f"golden expectation {expected_path} is missing — freeze it with "
            "--update-golden and commit it"
        )
    assert out == expected_path.read_text(encoding="utf-8"), (
        f"diff output drifted from {expected_path.name}; pairwise diff must "
        "stay byte-identical to its pre-refactor output"
    )
