"""Cross-module property-based tests on pipeline invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.diagnostics import compute_diagnostics
from repro.core.histograms import window_histogram
from repro.core.metrics import footprint
from repro.core.reuse import reuse_distances, reuse_intervals
from repro.core.zoom import ZoomConfig, location_zoom, zoom_leaves
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import decompress_counts, sample_ratio_from
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig

streams = st.builds(
    lambda addrs, classes: make_events(
        ip=1,
        addr=np.asarray(addrs, dtype=np.uint64) * 8,
        cls=np.resize(np.asarray(classes or [2], dtype=np.uint8), len(addrs)),
    ),
    addrs=st.lists(st.integers(0, 4000), min_size=1, max_size=400),
    classes=st.lists(st.sampled_from([1, 2]), max_size=8),
)

configs = st.builds(
    lambda period, cap: SamplingConfig(
        period=period, buffer_capacity=cap, fill_mean=1.0, fill_jitter=0.0
    ),
    period=st.integers(10, 200),
    cap=st.integers(1, 64),
)


@settings(max_examples=60, deadline=None)
@given(ev=streams, cfg=configs)
def test_sampling_is_a_subsequence(ev, cfg):
    """Sampled records are a subsequence of the observed stream, with
    sample sizes bounded by the buffer budget and the period."""
    col = collect_sampled_trace(ev, config=cfg)
    # subsequence: timestamps strictly increasing and present in source
    t = col.events["t"].astype(np.int64)
    assert np.all(np.diff(t) > 0) or len(t) <= 1
    assert set(t) <= set(ev["t"].astype(np.int64))
    for size in col.sample_sizes():
        assert size <= min(cfg.buffer_capacity, cfg.period)


@settings(max_examples=40, deadline=None)
@given(ev=streams, cfg=configs)
def test_rho_scaling_bounds_population(ev, cfg):
    """rho * implied sampled accesses ~= the run's load count."""
    col = collect_sampled_trace(ev, config=cfg)
    if len(col.events) == 0:
        return
    rho = sample_ratio_from(col)
    est = rho * decompress_counts(col.events)
    assert est == col.n_loads_total or abs(est - col.n_loads_total) < 1e-6


@settings(max_examples=40, deadline=None)
@given(ev=streams)
def test_histogram_footprint_monotone_in_window(ev):
    """Mean windowed footprint never decreases with window size."""
    sizes = [4, 8, 16, 32]
    _, means = window_histogram(ev, "F", sizes=sizes)
    valid = means[~np.isnan(means)]
    assert np.all(np.diff(valid) >= -1e-9)


@settings(max_examples=40, deadline=None)
@given(ev=streams)
def test_distance_never_exceeds_interval(ev):
    d = reuse_distances(ev, block=8)
    ri = reuse_intervals(ev, block=8)
    mask = d >= 0
    assert np.all(d[mask] <= ri[mask])
    assert np.all((d >= 0) == (ri >= 0))


@settings(max_examples=30, deadline=None)
@given(ev=streams)
def test_zoom_tree_structure(ev):
    """Children lie inside parents; leaf accesses never exceed the root's;
    every leaf's hotness share is within (0, 100]."""
    root = location_zoom(ev, ZoomConfig(page_size=4096, min_region_bytes=4096))
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children:
            assert child.base >= node.base
            assert child.end <= node.end
            assert child.n_accesses <= node.n_accesses
            stack.append(child)
    for leaf in zoom_leaves(root):
        assert 0 <= leaf.pct_of_total <= 100.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(ev=streams)
def test_diagnostics_internal_consistency(ev):
    d = compute_diagnostics(ev)
    assert d.A_implied >= d.A_obs
    assert d.F <= d.A_implied
    assert 0 <= d.dF <= 1
    assert d.F == footprint(ev)
    if d.F_str + d.F_irr > 0:
        assert abs(d.F_str_pct + d.F_irr_pct - 100.0) < 1e-9
