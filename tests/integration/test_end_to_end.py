"""Cross-module integration tests: the full MemGaze pipeline."""

import numpy as np
import pytest

from repro.core.histograms import mape, window_histogram
from repro.core.pipeline import AnalysisConfig, MemGaze
from repro.core.windows import code_windows
from repro.instrument.attribution import SourceMap
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import compression_ratio, sample_ratio_from
from repro.trace.event import LoadClass
from repro.trace.sampler import SamplingConfig
from repro.trace.tracefile import TraceMeta, read_trace, write_trace
from repro.workloads.microbench import run_microbench


@pytest.fixture(scope="module")
def bench():
    return run_microbench("str4|irr", n_elems=2048, repeats=10, seed=1)


class TestInstrumentedEquivalence:
    def test_rebuilt_equals_oracle_nonconstant(self, bench):
        nc = bench.events_full[bench.events_full["cls"] != int(LoadClass.CONSTANT)]
        assert np.array_equal(nc["addr"], bench.events_observed["addr"])
        assert np.array_equal(nc["ip"].astype(bool), nc["ip"].astype(bool))

    def test_suppressed_constants_recovered_exactly(self, bench):
        n_const_oracle = int(
            (bench.events_full["cls"] == int(LoadClass.CONSTANT)).sum()
        )
        n_const_rebuilt = int(bench.events_observed["n_const"].sum())
        assert n_const_oracle == n_const_rebuilt

    def test_kappa_matches_static_expectation(self, bench):
        kappa = compression_ratio(bench.events_observed)
        implied = len(bench.events_observed) + bench.events_observed["n_const"].sum()
        assert implied == len(bench.events_full)
        assert kappa > 1.0


class TestSampledAnalysisConsistency:
    def test_sampled_histogram_tracks_full(self, bench):
        cfg = SamplingConfig(period=2000, buffer_capacity=512, seed=0)
        col = collect_sampled_trace(bench.events_observed, config=cfg)
        sizes = [8, 16, 32, 64, 128]
        _, sampled = window_histogram(col.events, "F", sizes=sizes, sample_id=col.sample_id)
        _, full = window_histogram(bench.events_observed, "F", sizes=sizes)
        assert mape(sampled, full) < 25.0

    def test_rho_times_sample_recovers_population(self, bench):
        cfg = SamplingConfig(period=1000, buffer_capacity=256, seed=0)
        col = collect_sampled_trace(
            bench.events_observed, n_loads_total=bench.n_loads, config=cfg
        )
        rho = sample_ratio_from(col)
        est = rho * (len(col.events) + col.events["n_const"].sum())
        assert est == pytest.approx(bench.n_loads, rel=1e-6)

    def test_code_windows_find_segments(self, bench):
        mg = MemGaze(AnalysisConfig(SamplingConfig(period=1000, buffer_capacity=256)))
        from repro.instrument.rebuild import rebuild_trace  # noqa: F401  (doc pointer)

        res = mg.analyze_events(
            bench.events_observed,
            n_loads_total=bench.n_loads,
            fn_names=bench.fn_names,
        )
        segs = [n for n in res.per_function if n.startswith("seg")]
        assert len(segs) == 2
        str_seg = next(n for n in segs if "str4" in n)
        irr_seg = next(n for n in segs if n.endswith("irr"))
        assert res.per_function[str_seg].F_str_pct > 90
        assert res.per_function[irr_seg].F_str_pct < 10


class TestAttributionAndPersistence:
    def test_source_attribution_roundtrip(self, bench, tmp_path):
        ann = bench.instrumentation.annotations
        sm = SourceMap.from_annotations(ann)
        counts = sm.attribute_functions(bench.events_observed)
        assert counts  # every record attributes somewhere
        assert all(fn != "?" for fn in counts)

    def test_trace_file_roundtrip_preserves_analysis(self, bench, tmp_path):
        cfg = SamplingConfig(period=1000, buffer_capacity=256)
        col = collect_sampled_trace(bench.events_observed, config=cfg)
        meta = TraceMeta(
            module="ubench", kind="sampled", period=1000, buffer_capacity=256,
            n_loads_total=bench.n_loads, n_samples=col.n_samples,
        )
        write_trace(tmp_path / "t.npz", col.events, meta, col.sample_id)
        ev2, meta2, sid2 = read_trace(tmp_path / "t.npz")
        before = code_windows(col.events, fn_names=bench.fn_names)
        after = code_windows(ev2, fn_names=bench.fn_names)
        assert before.keys() == after.keys()
        for k in before:
            assert before[k].F == after[k].F
