"""Integration: a miniature Fig.-6-style validation of sampled analysis.

Checks the paper's central accuracy claim at test scale: sampled traces
around 1-10% of the full trace reproduce windowed footprint metrics with
bounded MAPE, and code-window aggregation reduces error further.
"""

import pytest

from repro.core.diagnostics import compute_diagnostics
from repro.core.histograms import mape, window_histogram
from repro.core.windows import code_windows
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import sample_ratio_from
from repro.trace.sampler import SamplingConfig
from repro.workloads.microbench import run_microbench

SIZES = [8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def bench():
    return run_microbench("str4/irr", n_elems=2048, repeats=20, seed=0)


@pytest.fixture(scope="module")
def collection(bench):
    cfg = SamplingConfig(period=5000, buffer_capacity=512, seed=2)
    return collect_sampled_trace(
        bench.events_observed, n_loads_total=bench.n_loads, config=cfg
    )


class TestTraceWindows:
    @pytest.mark.parametrize("metric", ["F", "F_str", "F_irr"])
    def test_mape_below_paper_bound(self, bench, collection, metric):
        _, sampled = window_histogram(
            collection.events, metric, sizes=SIZES, sample_id=collection.sample_id
        )
        _, full = window_histogram(bench.events_observed, metric, sizes=SIZES)
        err = mape(sampled, full)
        assert err < 25.0, f"{metric}: MAPE {err:.1f}%"


class TestCodeWindows:
    def test_per_function_error_small(self, bench, collection):
        """Aggregated code windows estimate per-function accesses within
        the paper's <5%-style bound (we allow 15% at this tiny scale)."""
        rho = sample_ratio_from(collection)
        sampled = code_windows(collection.events, rho=rho, fn_names=bench.fn_names)
        full = code_windows(bench.events_observed, fn_names=bench.fn_names)
        for fn, d_full in full.items():
            if d_full.A_implied < 2000 or fn == "main":
                continue
            d_s = sampled.get(fn)
            assert d_s is not None, fn
            rel = abs(d_s.A_est - d_full.A_implied) / d_full.A_implied
            assert rel < 0.15, f"{fn}: {rel:.2%}"

    def test_df_estimates_close(self, bench, collection):
        d_s = compute_diagnostics(collection.events)
        d_f = compute_diagnostics(bench.events_observed)
        # dF is scale-free; sampled windows overestimate slightly (paper
        # SS:VI-A: quantitative overestimates, not qualitative errors)
        assert d_s.dF >= d_f.dF * 0.8
        assert d_s.dF <= d_f.dF * 20


class TestSamplingFraction:
    def test_trace_is_small_fraction(self, bench, collection):
        frac = len(collection.events) / len(bench.events_observed)
        assert frac < 0.15
