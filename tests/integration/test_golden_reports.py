"""Golden regression fixtures: canonical archives, frozen report output.

``tests/integration/golden/`` holds a few small committed trace archives
plus the exact ``memgaze report --json`` text each must produce. Any
change to analysis numerics, pass serialization, or payload layout shows
up here as a byte diff against the frozen output — the same contract the
streaming service's live queries are held to.

Intentional changes are re-frozen with::

    pytest tests/integration/test_golden_reports.py --update-golden

which rewrites the ``*.json`` expectations (and regenerates any missing
archive from its pinned recipe). Review the diff like any other code
change: every altered number is a behavior change.

The archive recipes use literal seeds, **not** the suite seed — goldens
must not move when ``MEMGAZE_TEST_SEED`` re-rolls the rest of the suite.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.trace.event import LoadClass, make_events
from repro.trace.tracefile import TraceMeta, write_trace

GOLDEN = Path(__file__).parent / "golden"


def _case_strided_mix(path: Path) -> None:
    """Strided sweeps + irregular pocket + constant, 8 samples, rho 4."""
    rng = np.random.default_rng(1001)
    n = 8 * 256
    kind = np.arange(n) % 4
    addr = np.where(
        kind < 2,
        0x1000_0000 + (np.arange(n) * 64) % 16384,
        np.where(kind == 2, 0x2000_0000 + rng.integers(0, 256, n) * 8, 0x3000_0000),
    )
    cls = np.where(
        kind < 2,
        int(LoadClass.STRIDED),
        np.where(kind == 2, int(LoadClass.IRREGULAR), int(LoadClass.CONSTANT)),
    )
    fn = (np.arange(n) >= n // 2).astype(np.uint32)
    events = make_events(ip=0x40_0000 + kind * 4, addr=addr, cls=cls, fn=fn)
    sample_id = np.repeat(np.arange(8, dtype=np.int32), 256)
    meta = TraceMeta(
        module="golden-strided-mix",
        kind="sampled",
        period=1024,
        buffer_capacity=256,
        n_loads_total=n * 4,
        n_samples=8,
        extra={"fn_names": {"0": "setup", "1": "kernel"}, "mode": "ldlat"},
    )
    write_trace(path, events, meta, sample_id)


def _case_irregular(path: Path) -> None:
    """Pointer-chase style: mostly irregular loads over a wide range."""
    rng = np.random.default_rng(2002)
    n = 6 * 300
    addr = 0x5000_0000 + rng.integers(0, 1 << 16, n) * 64
    cls = np.full(n, int(LoadClass.IRREGULAR))
    cls[::7] = int(LoadClass.STRIDED)
    events = make_events(ip=0x41_0000 + (np.arange(n) % 5), addr=addr, cls=cls)
    sample_id = np.repeat(np.arange(6, dtype=np.int32), 300)
    meta = TraceMeta(
        module="golden-irregular",
        kind="sampled",
        period=2400,
        buffer_capacity=300,
        n_loads_total=n * 8,
        n_samples=6,
        extra={"fn_names": {"0": "chase"}, "mode": "ldlat"},
    )
    write_trace(path, events, meta, sample_id)


def _case_sidless(path: Path) -> None:
    """No sample ids: the whole-trace-as-one-sample degenerate layout."""
    n = 1024
    addr = 0x6000_0000 + (np.arange(n) * 128) % 65536
    events = make_events(
        ip=np.full(n, 0x42_0000),
        addr=addr,
        cls=np.full(n, int(LoadClass.STRIDED), dtype=np.uint8),
    )
    meta = TraceMeta(
        module="golden-sidless",
        kind="full",
        n_loads_total=n,
        n_samples=1,
        extra={"fn_names": {}, "mode": "full"},
    )
    write_trace(path, events, meta, None)


CASES = {
    "strided-mix": _case_strided_mix,
    "irregular": _case_irregular,
    "sidless": _case_sidless,
}

#: (case, extra CLI args, expectation suffix) — the full report plus one
#: restricted --passes payload, to pin both JSON layouts
VARIANTS = [
    ("strided-mix", [], "report"),
    ("strided-mix", ["--passes", "diagnostics,captures,reuse"], "passes"),
    ("irregular", [], "report"),
    ("sidless", [], "report"),
]


@pytest.mark.parametrize(
    "case,extra,suffix", VARIANTS, ids=[f"{c}-{s}" for c, _, s in VARIANTS]
)
def test_golden_report(case, extra, suffix, capsys, request):
    update = request.config.getoption("--update-golden")
    archive = GOLDEN / f"{case}.npz"
    expected_path = GOLDEN / f"{case}.{suffix}.json"

    if not archive.exists():
        if not update:
            pytest.fail(
                f"golden archive {archive} is missing — regenerate with "
                "--update-golden and commit it"
            )
        GOLDEN.mkdir(parents=True, exist_ok=True)
        CASES[case](archive)

    rc = cli_main(["report", str(archive), "--json", *extra])
    out = capsys.readouterr().out
    assert rc == 0

    if update:
        expected_path.write_text(out, encoding="utf-8")
        return
    if not expected_path.exists():
        pytest.fail(
            f"golden expectation {expected_path} is missing — freeze it with "
            "--update-golden and commit it"
        )
    assert out == expected_path.read_text(encoding="utf-8"), (
        f"report output drifted from {expected_path.name}; if the change is "
        "intentional, re-freeze with --update-golden and review the diff"
    )
