"""Failure injection: corrupted inputs fail loudly and recoverable losses
recover.

Covers the failure paths a deployed tool hits: truncated or corrupted
trace archives, annotation/packet mismatches, perf drop bursts hitting
two-register packet groups, and empty-everything corners.
"""

import json

import numpy as np
import pytest

from repro.instrument.annotations import AnnotationFile
from repro.instrument.instrumenter import instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter
from repro.simmem.address_space import AddressSpace
from repro.trace.collector import collect_full_trace, collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig
from repro.trace.tracefile import TraceMeta, read_trace, write_trace


class TestCorruptTraceFiles:
    def test_truncated_archive(self, tmp_path):
        path = tmp_path / "t.npz"
        write_trace(path, make_events(ip=1, addr=np.arange(100)), TraceMeta())
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            read_trace(path)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "t.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(Exception):
            read_trace(path)

    def test_bad_meta_json(self):
        with pytest.raises(json.JSONDecodeError):
            TraceMeta.from_json("{broken")

    def test_unsupported_version(self):
        text = TraceMeta().to_json().replace('"version": 1', '"version": 7')
        with pytest.raises(ValueError):
            TraceMeta.from_json(text)


class TestAnnotationMismatch:
    def test_annotations_from_wrong_module(self):
        def build(loop_n):
            b = ProgramBuilder("m")
            with b.proc("f", params=("arr",)) as p:
                with p.loop("i", 0, loop_n):
                    p.load("v", base="arr", index="i", scale=8)
                p.ret(0)
            return b.build()

        instrument_module(build(8))
        # a structurally different module: annotations won't line up
        b2 = ProgramBuilder("m2")
        with b2.proc("g", params=("arr", "x")) as p:
            p.mov("v", 0)
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="v", scale=8)
                p.load("w", base="x", index="i", scale=8)
            p.ret(0)
        inst_b = instrument_module(b2.build())
        res = Interpreter(inst_b.module, AddressSpace()).run(
            "g", 0x1000, 0x8000, mode="instrumented"
        )
        # wrong annotation file: either a hard error or (if ips happen to
        # collide) a stream that cannot be fully matched
        with pytest.raises(ValueError):
            rebuild_trace(res.packets, AnnotationFile(module="empty"))

    def test_bad_annotation_roundtrip_content(self):
        with pytest.raises((KeyError, TypeError)):
            AnnotationFile.from_json('{"module": "m"}')


class TestDropsThroughRebuild:
    def test_dropped_packets_resync_end_to_end(self, rng):
        """perf-style burst drops on the raw packet stream -> resync
        rebuild recovers every intact record."""
        b = ProgramBuilder("m")
        with b.proc("f", params=("arr",)) as p:
            p.mov("v", 0)
            with p.loop("i", 0, 2000):
                p.load("v", base="arr", index="v", scale=8)
            p.ret(0)
        inst = instrument_module(b.build())
        space = AddressSpace()
        for i in range(2000):
            space.store_value(0x1000 + 8 * i, (i * 17) % 2000)
        res = Interpreter(inst.module, space).run("f", 0x1000, mode="instrumented")
        packets = res.packets

        keep = np.ones(len(packets), dtype=bool)
        for start in rng.integers(0, len(packets) - 64, 12):
            keep[start : start + 64] = False
        damaged = packets[keep]

        clean = rebuild_trace(packets, inst.annotations)
        out = rebuild_trace(damaged, inst.annotations, resync=True)
        assert 0 < len(out) < len(clean)
        clean_by_t = {int(t): int(a) for t, a in zip(clean["t"], clean["addr"])}
        for t, a in zip(out["t"], out["addr"]):
            assert clean_by_t[int(t)] == int(a)


class TestDamagedArchiveHtmlReport:
    """``report --html`` on a hurt archive: verified prefix + banner."""

    def _archive(self, path, rng):
        from repro.trace.tracefile import HEALTH_CHUNK_EVENTS

        n = 3 * HEALTH_CHUNK_EVENTS
        ev = make_events(
            ip=rng.integers(0, 32, n),
            addr=rng.integers(0, 1 << 22, n),
            cls=rng.choice([0, 1, 2], n).astype(np.uint8),
        )
        sample_id = np.repeat(np.arange(3, dtype=np.int32), n // 3)
        meta = TraceMeta(
            module="hurt", kind="sampled", period=100,
            buffer_capacity=n // 3, n_loads_total=n, n_samples=3,
        )
        write_trace(path, ev, meta, sample_id)

    def _render(self, archive, out):
        from repro.cli import main as cli_main

        assert cli_main(["report", str(archive), "--html", str(out)]) == 0
        return out.read_text(encoding="utf-8")

    @pytest.mark.faults
    def test_truncated_archive_renders_prefix_with_banner(self, tmp_path, rng):
        """Tail truncation reads as *still growing*: the page renders the
        verified prefix and says so, instead of crashing or lying."""
        from obs import faults

        clean = tmp_path / "clean.npz"
        self._archive(clean, rng)
        hurt = faults.truncate(clean, tmp_path / "hurt.npz")

        page = self._render(hurt, tmp_path / "hurt.html")
        assert "verified prefix" in page
        assert "still growing" in page

    @pytest.mark.faults
    def test_bitflipped_archive_renders_prefix_with_banner(self, tmp_path, rng):
        from obs import faults

        clean = tmp_path / "clean.npz"
        self._archive(clean, rng)
        hurt = faults.bit_flip(clean, tmp_path / "hurt.npz")

        page = self._render(hurt, tmp_path / "hurt.html")
        assert "verified prefix" in page
        assert "damaged archive" in page

    def test_clean_archive_has_no_banner(self, tmp_path, rng):
        """The degraded banner must not leak into healthy reports (its
        absence keeps clean payloads byte-identical to the golden ones)."""
        clean = tmp_path / "clean.npz"
        self._archive(clean, rng)
        page = self._render(clean, tmp_path / "clean.html")
        assert "verified prefix" not in page


class TestDegenerateInputs:
    def test_sampling_period_longer_than_run(self):
        ev = make_events(ip=1, addr=np.arange(50))
        cfg = SamplingConfig(period=1_000_000, buffer_capacity=64)
        col = collect_sampled_trace(ev, config=cfg)
        assert col.n_samples == 0
        assert len(col.events) == 0

    def test_full_collection_total_drop_rejected(self):
        ev = make_events(ip=1, addr=np.arange(50))
        with pytest.raises(ValueError):
            collect_full_trace(ev, drop_fraction=1.0)

    def test_buffer_larger_than_stream(self):
        ev = make_events(ip=1, addr=np.arange(100))
        cfg = SamplingConfig(period=50, buffer_capacity=10_000, fill_mean=1.0, fill_jitter=0.0)
        col = collect_sampled_trace(ev, config=cfg)
        # every record lands in some sample exactly once
        assert len(col.events) == 100
