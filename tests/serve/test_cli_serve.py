"""Smoke test of the ``memgaze serve`` / ``submit`` / ``query`` verbs.

Boots the daemon as a real subprocess (the way CI's serve-smoke job and
a user would), streams an archive into it, and checks the live query is
byte-identical to the offline report over the session archive.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.cli import main as cli_main

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def test_cli_serve_submit_query_round_trip(tmp_path, make_rng, build_archive, capsys):
    archive = tmp_path / "t.npz"
    build_archive(archive, make_rng(), n_samples=6, per_sample=200, module="cli-mod")
    port_file = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--root", str(tmp_path / "state"),
            "--port", "0",
            "--port-file", str(port_file),
            "--journal", str(tmp_path / "journal.jsonl"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists():
            assert proc.poll() is None, proc.communicate()[1]
            assert time.monotonic() < deadline, "daemon never wrote the port file"
            time.sleep(0.05)
        port = port_file.read_text().strip()

        assert cli_main(["submit", str(archive), "--port", port]) == 0
        cap = capsys.readouterr()
        assert "submitted 1,200 events in" in cap.out
        assert "session 't'" in cap.out

        assert cli_main(["query", "t", "--port", port, "--verbose"]) == 0
        cap = capsys.readouterr()
        live = cap.out
        assert "# session t: 1 chunks" in cap.err

        session_archive = tmp_path / "state" / "sessions" / "t.npz"
        assert cli_main(["report", str(session_archive), "--json"]) == 0
        offline = capsys.readouterr().out
        assert live == offline, "live query != offline report on the session archive"
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            out, err = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate()
            raise AssertionError(f"daemon ignored SIGTERM\nstderr:\n{err}")
    assert proc.returncode == 0, err
    assert "memgaze serve: listening on 127.0.0.1:" in out
    assert "memgaze serve: stopped" in out
