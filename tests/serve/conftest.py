"""Shared fixtures for the streaming-service tests.

``ServerHarness`` runs a :class:`TraceServer` on a private asyncio loop
in a daemon thread, so blocking :class:`ServeClient` calls can exercise
it from the test thread exactly the way a real client process would.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serve.daemon import ServeConfig, TraceServer
from repro.trace.event import LoadClass, make_events
from repro.trace.tracefile import TraceMeta, write_trace


def _build_archive(
    path,
    rng: np.random.Generator,
    *,
    n_samples: int = 12,
    per_sample: int = 400,
    module: str = "serve-test",
):
    """Write a deterministic sampled archive mixing all load classes."""
    n = n_samples * per_sample
    kind = np.arange(n) % 3
    addr = np.where(
        kind == 0,
        0x1000_0000 + (np.arange(n) * 8) % 8192,
        np.where(
            kind == 1,
            0x2000_0000 + rng.integers(0, 1024, n) * 8,
            0x3000_0000,
        ),
    )
    cls = np.where(
        kind == 0,
        int(LoadClass.STRIDED),
        np.where(kind == 1, int(LoadClass.IRREGULAR), int(LoadClass.CONSTANT)),
    )
    fn = (np.arange(n) % 2).astype(np.uint32)
    events = make_events(ip=0x40_0000 + kind * 4, addr=addr, cls=cls, fn=fn)
    sample_id = np.repeat(np.arange(n_samples, dtype=np.int32), per_sample)
    meta = TraceMeta(
        module=module,
        kind="sampled",
        period=1000,
        buffer_capacity=per_sample,
        n_loads_total=n * 4,
        n_samples=n_samples,
        extra={"fn_names": {"0": "alpha", "1": "beta"}, "mode": "ldlat"},
    )
    write_trace(path, events, meta, sample_id)
    return events, sample_id, meta


class ServerHarness:
    """A TraceServer on its own event loop, driven from a thread."""

    def __init__(self, config: ServeConfig, **kwargs) -> None:
        self.server = TraceServer(config, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_until_stopped()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._started.set()  # unblock start() even on a boot crash
            self._loop.close()

    def start(self) -> int:
        self._thread.start()
        assert self._started.wait(timeout=30), "server thread never booted"
        assert self.server.port is not None, "server failed to bind"
        return self.server.port

    def join(self, timeout: float = 60) -> None:
        """Wait for the server to exit on its own (client shutdown)."""
        self._thread.join(timeout=timeout)
        self._reap()
        assert not self._thread.is_alive(), "server did not shut down"

    def stop(self, timeout: float = 60) -> None:
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server._stopping.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        self._reap()
        assert not self._thread.is_alive(), "server did not shut down"

    def _reap(self) -> None:
        """Best-effort shard-worker cleanup so pytest never leaks them."""
        for w in self.server.workers:
            w.kill()


@pytest.fixture
def build_archive():
    """The archive builder, as a fixture so tests need no conftest import."""
    return _build_archive


@pytest.fixture
def serve_harness(tmp_path):
    """Factory fixture: ``boot(**config_kwargs)`` → (harness, port)."""
    harnesses: list[ServerHarness] = []

    def boot(**kwargs):
        journal = kwargs.pop("journal", None)
        metrics = kwargs.pop("metrics", None)
        ingest_hook = kwargs.pop("ingest_hook", None)
        query_hook = kwargs.pop("query_hook", None)
        kwargs.setdefault("root", tmp_path / "serve-state")
        config = ServeConfig(**kwargs)
        h = ServerHarness(
            config,
            journal=journal,
            metrics=metrics,
            ingest_hook=ingest_hook,
            query_hook=query_hook,
        )
        harnesses.append(h)
        port = h.start()
        return h, port

    yield boot
    for h in harnesses:
        h.stop()
