"""Tests for the streaming service's wire format (framing + chunks)."""

from __future__ import annotations

import io
import json
import struct

import numpy as np
import pytest

from repro.serve.protocol import (
    ProtocolError,
    decode_chunk,
    encode_chunk,
    pack_frame,
    read_frame_sync,
    write_frame_sync,
)
from repro.trace.event import make_events


def _events(rng, n=100):
    return make_events(
        ip=rng.integers(0, 16, n),
        addr=rng.integers(0, 1 << 20, n),
        cls=rng.choice([0, 1, 2], n).astype(np.uint8),
    )


class TestFraming:
    def test_round_trip(self):
        header = {"type": "open", "session": "s", "n": 3}
        payload = b"\x00\x01binary\xff"
        fp = io.BytesIO(pack_frame(header, payload))
        got_header, got_payload = read_frame_sync(fp)
        assert got_header == header
        assert got_payload == payload

    def test_empty_payload(self):
        fp = io.BytesIO(pack_frame({"type": "ping"}))
        header, payload = read_frame_sync(fp)
        assert header == {"type": "ping"}
        assert payload == b""

    def test_write_frame_sync_matches_pack(self):
        fp = io.BytesIO()
        write_frame_sync(fp, {"type": "ok"}, b"xy")
        assert fp.getvalue() == pack_frame({"type": "ok"}, b"xy")

    def test_header_is_canonical_json(self):
        blob = pack_frame({"b": 1, "a": 2, "type": "t"})
        json_len = struct.unpack("!II", blob[:8])[0]
        header_bytes = blob[8 : 8 + json_len]
        assert header_bytes == json.dumps(
            {"a": 2, "b": 1, "type": "t"}, sort_keys=True, separators=(",", ":")
        ).encode()

    def test_clean_close_raises_eoferror(self):
        with pytest.raises(EOFError):
            read_frame_sync(io.BytesIO(b""))

    def test_mid_frame_close_raises_protocol_error(self):
        blob = pack_frame({"type": "x"}, b"payload")
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame_sync(io.BytesIO(blob[:-3]))

    def test_oversized_frame_rejected_before_read(self):
        blob = pack_frame({"type": "x"}, b"y" * 1000)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame_sync(io.BytesIO(blob), max_bytes=100)

    def test_garbage_header_rejected(self):
        bad = struct.pack("!II", 4, 0) + b"{{{{"
        with pytest.raises(ProtocolError, match="unparsable"):
            read_frame_sync(io.BytesIO(bad))

    def test_header_must_carry_type(self):
        bad = pack_frame({"type": "x"})  # build a frame, then rewrite header
        blob = json.dumps({"no_type": 1}).encode()
        bad = struct.pack("!II", len(blob), 0) + blob
        with pytest.raises(ProtocolError, match="'type'"):
            read_frame_sync(io.BytesIO(bad))

    def test_empty_header_rejected(self):
        with pytest.raises(ProtocolError, match="empty header"):
            read_frame_sync(io.BytesIO(struct.pack("!II", 0, 0)))


class TestChunkCodec:
    def test_round_trip_with_sample_ids(self, rng):
        ev = _events(rng)
        sid = np.sort(rng.integers(0, 5, len(ev))).astype(np.int32)
        fields, payload = encode_chunk(ev, sid)
        got_ev, got_sid = decode_chunk({"type": "append", **fields}, payload)
        assert np.array_equal(got_ev, ev)
        assert np.array_equal(got_sid, sid)

    def test_round_trip_without_sample_ids(self, rng):
        ev = _events(rng)
        fields, payload = encode_chunk(ev, None)
        got_ev, got_sid = decode_chunk({"type": "append", **fields}, payload)
        assert np.array_equal(got_ev, ev)
        assert got_sid is None

    def test_survives_a_socket_frame(self, rng):
        """The codec composes with framing: arrays cross as raw bytes."""
        ev = _events(rng, 257)
        sid = np.arange(257, dtype=np.int32) // 64
        fields, payload = encode_chunk(ev, sid)
        fp = io.BytesIO(pack_frame({"type": "append", **fields}, payload))
        header, got_payload = read_frame_sync(fp)
        got_ev, got_sid = decode_chunk(header, got_payload)
        assert np.array_equal(got_ev, ev)
        assert np.array_equal(got_sid, sid)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            encode_chunk(np.zeros(4), None)

    def test_sid_length_mismatch_rejected(self, rng):
        ev = _events(rng, 10)
        with pytest.raises(ValueError):
            encode_chunk(ev, np.zeros(9, dtype=np.int32))

    def test_payload_geometry_validated(self, rng):
        ev = _events(rng, 10)
        fields, payload = encode_chunk(ev, None)
        with pytest.raises(ProtocolError, match="geometry"):
            decode_chunk({"type": "append", **fields}, payload[:-1])

    def test_negative_event_count_rejected(self):
        with pytest.raises(ProtocolError):
            decode_chunk({"type": "append", "n_events": -1, "n_sid": None}, b"")
