"""Sharded-daemon behavior tests.

Three properties the session-sharded dispatcher must provide beyond the
single-executor daemon it replaced:

* **no head-of-line blocking** — a slow query on one session must not
  delay a session owned by a different shard worker;
* **layered backpressure** — a session at its own queue cap sheds with
  scope ``session`` (and its own counter) while the daemon-wide bound
  still has room;
* **crash isolation** — a shard worker dying is a per-session error
  plus a respawn, never a daemon death or another session's problem.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import zlib

import pytest

from repro.obs import MetricsRegistry, RunJournal, read_journal
from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.shard import route_session

PASSES = ["diagnostics", "captures"]


def _names_on_distinct_workers(n_workers: int, count: int = 2) -> list[str]:
    """Deterministic session names routed to ``count`` distinct workers."""
    names: list[str] = []
    seen: set[int] = set()
    i = 0
    while len(names) < count:
        name = f"tenant{i}"
        i += 1
        worker = route_session(name, n_workers)
        if worker not in seen:
            seen.add(worker)
            names.append(name)
    return names


def test_route_session_is_deterministic_and_in_range():
    # crc32, not the salted builtin hash: stable across processes/restarts
    assert route_session("alpha", 4) == zlib.crc32(b"alpha") % 4
    assert route_session("x", 1) == 0
    assert all(0 <= route_session(f"s{i}", 7) < 7 for i in range(200))
    # ...and genuinely spreads names around
    assert len({route_session(f"s{i}", 4) for i in range(32)}) == 4


def test_slow_query_on_one_session_does_not_stall_another(
    tmp_path, make_rng, serve_harness, build_archive
):
    """Park one shard inside a query; a session on a different shard
    must keep answering while it is parked."""
    slow, fast = _names_on_distinct_workers(4)
    entered = multiprocessing.Event()
    gate = multiprocessing.Event()

    def hook(name, passes):  # runs inside the owning worker process
        if name == slow:
            entered.set()
            gate.wait(timeout=60)

    _, port = serve_harness(serve_workers=4, query_hook=hook)
    ev, sid, meta = build_archive(
        tmp_path / "t.npz", make_rng(), n_samples=4, per_sample=100
    )

    done = threading.Event()
    result: dict = {}

    def slow_client():
        try:
            with ServeClient(port=port) as c:
                c.open(slow, meta)
                c.append(slow, ev, sid)
                # FIFO per worker: the query runs after the ingest lands
                result["slow"] = c.query(slow, PASSES)
        except BaseException as exc:  # surfaces in the main thread
            result["slow"] = exc
        finally:
            done.set()

    t = threading.Thread(target=slow_client)
    t.start()
    try:
        assert entered.wait(timeout=60), "slow query never reached its worker"
        with ServeClient(port=port) as c:
            c.open(fast, meta)
            c.append(fast, ev, sid)
            info, text = c.query(fast, PASSES)
        assert info["n_events"] == len(ev)
        assert text
        # the parked shard is still parked: the fast tenant did not wait
        assert not done.is_set(), "fast query waited for the parked shard"
    finally:
        gate.set()
        t.join(timeout=60)
    assert not t.is_alive(), "slow client hung"
    if isinstance(result.get("slow"), BaseException):
        raise result["slow"]
    info, _ = result["slow"]
    assert info["n_events"] == len(ev)


def test_session_queue_cap_sheds_with_session_scope(
    tmp_path, make_rng, serve_harness, build_archive
):
    """A session at its own cap sheds (scope ``session``, per-session
    counter, ``session-queue-full`` journal reason) even though the
    global queue still has plenty of room — and the shed chunk lands on
    retry once the worker drains."""
    journal_path = tmp_path / "journal.jsonl"
    journal = RunJournal(journal_path)
    metrics = MetricsRegistry()
    gate = multiprocessing.Event()
    entered = multiprocessing.Event()

    def hook(name, n_events):  # parks the owning worker inside an ingest
        entered.set()
        gate.wait(timeout=60)

    _, port = serve_harness(
        queue_size=16,
        session_queue_size=1,
        journal=journal,
        metrics=metrics,
        ingest_hook=hook,
    )
    ev, sid, meta = build_archive(
        tmp_path / "t.npz", make_rng(), n_samples=6, per_sample=100
    )
    chunks = [
        (ev[i * 200 : (i + 1) * 200], sid[i * 200 : (i + 1) * 200]) for i in range(3)
    ]

    with ServeClient(port=port) as c:
        c.open("s", meta)
        c.append("s", *chunks[0])
        assert entered.wait(timeout=30), "worker never started the ingest"
        c.append("s", *chunks[1])  # queued: the session is now at its cap
        with pytest.raises(ServeBusy) as excinfo:
            c.append("s", *chunks[2])
        assert excinfo.value.scope == "session"
        assert excinfo.value.queue_depth == 1
        gate.set()
        deadline = time.monotonic() + 60
        while True:  # the shed chunk is accepted once the worker drains
            try:
                c.append("s", *chunks[2])
                break
            except ServeBusy as busy:
                assert busy.scope == "session"
                assert time.monotonic() < deadline
                time.sleep(busy.retry_ms / 1000.0)
        info = c.close_session("s")
    assert info["n_chunks"] == 3
    assert info["n_events"] == 600

    assert metrics.counter("serve.shed.session.s").value >= 1
    shed = [
        r for r in read_journal(journal_path)
        if r.get("reason") == "session-queue-full"
    ]
    assert shed, "session-scoped shed was not journaled"
    assert shed[0]["session"] == "s"
    assert shed[0]["queue_depth"] == 1


def test_worker_crash_is_a_session_error_not_a_daemon_death(
    tmp_path, make_rng, serve_harness, build_archive
):
    """SIGKILL a shard mid-ingest: the victim session errors and can be
    reopened on the respawned worker; the daemon and every other shard
    keep serving."""
    n_workers = 2
    doomed, other = _names_on_distinct_workers(n_workers)
    armed = multiprocessing.Event()
    armed.set()

    def hook(name, n_events):  # kills the owning worker exactly once
        if name == doomed and armed.is_set():
            armed.clear()
            os.kill(os.getpid(), signal.SIGKILL)

    journal_path = tmp_path / "journal.jsonl"
    journal = RunJournal(journal_path)
    metrics = MetricsRegistry()
    _, port = serve_harness(
        serve_workers=n_workers, journal=journal, metrics=metrics, ingest_hook=hook
    )
    ev, sid, meta = build_archive(
        tmp_path / "t.npz", make_rng(), n_samples=4, per_sample=100
    )

    with ServeClient(port=port) as c:
        c.open(doomed, meta)
        c.open(other, meta)
        c.append(doomed, ev, sid)  # SIGKILLs the owning shard mid-ingest
        # FIFO again: by the time this query is answered the crash has
        # been handled and the worker respawned with an empty session map
        with pytest.raises(ServeError, match="no open session"):
            c.query(doomed, PASSES)
        # the daemon survived, and the other shard never noticed
        assert c.ping()["type"] == "ok"
        c.append(other, ev, sid)
        info, _ = c.query(other, PASSES)
        assert info["n_events"] == len(ev)
        # reopen lands on the fresh worker; the lost chunk is re-sent
        c.open(doomed, meta)
        c.append(doomed, ev, sid)
        info, _ = c.query(doomed, PASSES)
        assert info["n_events"] == len(ev)
        c.close_session(doomed)
        c.close_session(other)

    assert metrics.counter("serve.worker.restarts").value == 1
    crash_idx = route_session(doomed, n_workers)
    assert metrics.counter(f"serve.worker.{crash_idx}.crashes").value == 1
    assert metrics.counter("serve.ingest_errors").value == 1  # the lost append
    records = list(read_journal(journal_path))
    crash = [r for r in records if "sessions_lost" in r]
    assert crash and doomed in crash[0]["sessions_lost"]
    assert any(
        "append lost" in str(r.get("message", "")) for r in records
    ), "the lost queued append was not journaled"
