"""End-to-end tests of the streaming analysis daemon.

The centerpiece is the equivalence test: two clients stream different
traces concurrently, query after every chunk, and every intermediate
payload must be **byte-identical** to what offline ``memgaze report
--json`` prints for an archive holding exactly that prefix.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.obs import MetricsRegistry, RunJournal, read_journal
from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.trace.event import make_events
from repro.trace.tracefile import iter_trace_chunks, read_trace_meta, write_trace

PASSES = ["diagnostics", "captures", "reuse"]


def _query_when_ready(client, name, min_chunks, timeout=60.0):
    """Poll until the async ingest pipeline has landed ``min_chunks``."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            info, text = client.query(name, PASSES)
        except ServeError:
            info, text = None, None  # nothing ingested yet
        if info is not None and info["n_chunks"] >= min_chunks:
            return info, text
        assert time.monotonic() < deadline, "ingest never caught up"
        time.sleep(0.01)


def _stream_session(port, name, archive, chunk_size, out):
    """Client thread: append chunk, wait for ingest, capture live query."""
    try:
        meta = read_trace_meta(archive)
        captured = []
        prefix_ev, prefix_sid = [], []
        with ServeClient(port=port) as c:
            c.open(name, meta)
            k = 0
            for events, sid in iter_trace_chunks(archive, chunk_size=chunk_size):
                while True:
                    try:
                        c.append(name, events, sid)
                        break
                    except ServeBusy as busy:
                        time.sleep(busy.retry_ms / 1000.0)
                k += 1
                prefix_ev.append(events)
                prefix_sid.append(sid)
                _, text = _query_when_ready(c, name, k)
                captured.append(
                    (np.concatenate(prefix_ev), np.concatenate(prefix_sid), text)
                )
            _, full_text = c.query(name)  # full report on the whole stream
            c.close_session(name)
        out[name] = (meta, captured, full_text)
    except BaseException as exc:  # surfaces in the main thread
        out[name] = exc


def test_ping(serve_harness):
    _, port = serve_harness()
    with ServeClient(port=port) as c:
        assert c.ping() == {"type": "ok", "port": port}


@pytest.mark.parametrize("serve_workers", [1, 4])
def test_live_queries_bit_identical_to_offline_report(
    tmp_path, make_rng, serve_harness, build_archive, capsys, serve_workers
):
    """Two concurrent clients; every intermediate live query must equal
    the offline report over that exact archive prefix, byte for byte —
    at one shard worker and at four (the sharded dispatcher must keep
    the per-session contract intact)."""
    a1 = tmp_path / "alpha.npz"
    a2 = tmp_path / "beta.npz"
    build_archive(a1, make_rng("alpha"), n_samples=12, per_sample=300, module="alpha-mod")
    build_archive(a2, make_rng("beta"), n_samples=8, per_sample=500, module="beta-mod")

    _, port = serve_harness(queue_size=16, serve_workers=serve_workers)
    out: dict = {}
    threads = [
        threading.Thread(target=_stream_session, args=(port, name, archive, cs, out))
        for name, archive, cs in (("alpha", a1, 900), ("beta", a2, 1000))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
        assert not t.is_alive(), "client thread hung"
    for name in ("alpha", "beta"):
        if isinstance(out.get(name), BaseException):
            raise out[name]

    for name in ("alpha", "beta"):
        meta, captured, full_text = out[name]
        assert len(captured) >= 3, "need several intermediate prefixes"
        prefix = None
        for i, (ev, sid, live_text) in enumerate(captured):
            prefix = tmp_path / f"{name}-prefix-{i}.npz"
            write_trace(prefix, ev, meta, sid)
            rc = cli_main(
                ["report", str(prefix), "--json", "--passes", ",".join(PASSES)]
            )
            cap = capsys.readouterr()
            assert rc == 0
            assert cap.out == live_text + "\n", (
                f"{name} prefix {i}: live query != offline report"
            )
        # the final full-report payload too (all passes + function windows)
        rc = cli_main(["report", str(prefix), "--json"])
        cap = capsys.readouterr()
        assert rc == 0
        assert cap.out == full_text + "\n"


def test_queue_overflow_sheds_with_journaled_busy(
    tmp_path, make_rng, serve_harness, build_archive
):
    """A full ingest queue rejects the append deterministically: busy
    response, ``serve.shed`` counter, journaled queue-full warning —
    and the shed chunk succeeds on retry once the queue drains."""
    journal_path = tmp_path / "journal.jsonl"
    journal = RunJournal(journal_path)
    metrics = MetricsRegistry()
    # the hook runs inside the forked shard-worker process, so the
    # gates must be multiprocessing primitives, not threading ones
    gate = multiprocessing.Event()
    entered = multiprocessing.Event()

    def hook(name, n_events):  # parks the single worker inside an ingest
        entered.set()
        gate.wait(timeout=60)

    _, port = serve_harness(
        queue_size=1, journal=journal, metrics=metrics, ingest_hook=hook
    )
    ev, sid, meta = build_archive(
        tmp_path / "t.npz", make_rng(), n_samples=6, per_sample=100
    )
    chunks = [(ev[i * 200 : (i + 1) * 200], sid[i * 200 : (i + 1) * 200]) for i in range(3)]

    retries = 0
    with ServeClient(port=port) as c:
        c.open("s", meta)
        c.append("s", *chunks[0])
        assert entered.wait(timeout=30), "worker never started the ingest"
        c.append("s", *chunks[1])  # fills the size-1 queue behind the parked worker
        with pytest.raises(ServeBusy) as excinfo:
            c.append("s", *chunks[2])
        assert excinfo.value.retry_ms == 50
        gate.set()
        deadline = time.monotonic() + 60
        while True:  # the shed chunk is accepted once the worker drains
            try:
                c.append("s", *chunks[2])
                break
            except ServeBusy as busy:
                retries += 1
                assert time.monotonic() < deadline
                time.sleep(busy.retry_ms / 1000.0)
        info = c.close_session("s")
        assert info["n_chunks"] == 3
        assert info["n_events"] == 600

    assert metrics.counter("serve.shed").value == 1 + retries
    shed = [r for r in read_journal(journal_path) if r.get("reason") == "queue-full"]
    assert shed, "load-shed was not journaled"
    assert shed[0]["session"] == "s"
    assert shed[0]["queue_size"] == 1

    assert cli_main(["validate-trace", str(tmp_path / "serve-state/sessions/s.npz")]) == 0


def test_graceful_shutdown_drains_and_leaves_valid_archives(
    tmp_path, make_rng, serve_harness, build_archive
):
    journal_path = tmp_path / "journal.jsonl"
    journal = RunJournal(journal_path)
    metrics = MetricsRegistry()
    harness, port = serve_harness(journal=journal, metrics=metrics)
    ev, sid, meta = build_archive(
        tmp_path / "t.npz", make_rng(), n_samples=4, per_sample=150
    )
    with ServeClient(port=port) as c:
        c.open("one", meta)
        c.open("two", meta)
        c.append("one", ev[:300], sid[:300])
        c.append("one", ev[300:], sid[300:])
        c.append("two", ev, sid)
        # shutdown without closing sessions: the daemon must drain the
        # queued appends and flush both sessions itself
        assert c.shutdown() == {"type": "ok", "stopping": True}
    harness.join()

    sessions = tmp_path / "serve-state" / "sessions"
    for name in ("one", "two"):
        assert cli_main(["validate-trace", str(sessions / f"{name}.npz")]) == 0

    records = list(read_journal(journal_path))
    stop = [r for r in records if r.get("event") == "serve-stop"]
    assert stop and stop[0]["sessions_flushed"] == 2
    assert metrics.counter("serve.accepted").value == 3
    assert metrics.counter("serve.events_ingested").value == 1200
    assert any(r.get("event") == "chunk-ingested" for r in records)
    assert any(r.get("stage") == "serve-ingest" for r in records)


def test_close_then_reopen_rehydrates_the_archive(
    tmp_path, make_rng, serve_harness, build_archive
):
    _, port = serve_harness()
    ev, sid, meta = build_archive(
        tmp_path / "t.npz", make_rng(), n_samples=4, per_sample=100
    )
    with ServeClient(port=port) as c:
        c.open("s", meta)
        c.append("s", ev[:200], sid[:200])
        c.close_session("s")
        c.open("s", meta)  # re-attach: adopts the on-disk archive
        info, _ = _query_when_ready(c, "s", 1)
        assert info["n_events"] == 200
        c.append("s", ev[200:], sid[200:])
        info, _ = _query_when_ready(c, "s", 2)
        assert info["n_events"] == 400
        c.close_session("s")


def test_protocol_errors_surface_as_serve_errors(serve_harness):
    _, port = serve_harness()
    one_event = make_events(
        ip=np.array([1]), addr=np.array([2]), cls=np.array([0], dtype=np.uint8)
    )
    with ServeClient(port=port) as c:
        with pytest.raises(ServeError, match="protocol version"):
            c._round_trip({"type": "open", "session": "x", "protocol": 99})
        with pytest.raises(ServeError, match="before open"):
            c.append("x", one_event)
        with pytest.raises(ServeError, match="no open session"):
            c.query("nope")
        with pytest.raises(ServeError, match="invalid session name"):
            c.open("../evil")
        with pytest.raises(ServeError, match="unknown message type"):
            c._round_trip({"type": "frobnicate"})
        # the connection survives every rejection
        assert c.ping()["type"] == "ok"
