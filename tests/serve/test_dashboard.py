"""Dashboard lifecycle: the daemon's live HTML view of its sessions.

``memgaze serve --dashboard`` puts a small HTTP endpoint next to the
framed protocol listener, rendering each session's current analysis
through the *same* template path as the offline ``memgaze report
--html``. These tests pin the contract:

* for a quiesced session the live rendering is byte-identical to the
  offline rendering of the session's archive (the headline acceptance
  criterion);
* the view reflects new submits on the next poll;
* a GET survives a shard-worker crash — the daemon respawns the worker
  and the retry re-opens the session from its surviving archive;
* with ``--dashboard`` off (the default) the daemon opens no HTTP port
  and behaves exactly as before.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.serve.client import ServeClient, submit_archive
from repro.serve.shard import route_session

_VM_RE = re.compile(
    r'<script type="application/json" id="memgaze-viewmodel">\n(.*?)\n</script>',
    re.DOTALL,
)


def _get(port: int, path: str) -> tuple[int, bytes]:
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=60) as resp:
        return resp.status, resp.read()


def _live_n_events(port: int, session: str) -> int:
    _, body = _get(port, f"/report?session={session}")
    m = _VM_RE.search(body.decode("utf-8"))
    assert m, "live page has no embedded viewmodel"
    vm = json.loads(m.group(1).replace("<\\/", "</"))
    return vm["meta"]["n_events"]


def test_dashboard_off_by_default(serve_harness):
    h, port = serve_harness()
    assert h.server.dashboard_port is None
    with ServeClient(port=port) as client:
        assert client.ping()["type"] == "ok"


def test_live_rendering_matches_offline_bytes(
    serve_harness, build_archive, tmp_path, rng
):
    """Quiesced session: GET /report == ``memgaze report --html``."""
    archive = tmp_path / "in.npz"
    build_archive(archive, rng)
    h, port = serve_harness(dashboard=True)
    dport = h.server.dashboard_port
    assert dport is not None

    submit_archive(archive, port=port, session="alpha")
    status, live = _get(dport, "/report?session=alpha")
    assert status == 200

    session_archive = tmp_path / "serve-state" / "sessions" / "alpha.npz"
    assert session_archive.exists()
    out = tmp_path / "offline.html"
    assert cli_main(["report", str(session_archive), "--html", str(out)]) == 0
    offline = out.read_bytes()
    assert live == offline, (
        "live dashboard rendering is not byte-identical to the offline "
        "--html rendering of the same session archive"
    )


def test_dashboard_reflects_new_submits(
    serve_harness, build_archive, tmp_path, rng
):
    archive = tmp_path / "in.npz"
    events, sample_id, meta = build_archive(archive, rng)
    h, port = serve_harness(dashboard=True)
    dport = h.server.dashboard_port
    half = len(events) // 2  # 12 samples x 400 events: sample-aligned

    with ServeClient(port=port) as client:
        client.open("grow", meta)
        client.append("grow", events[:half], sample_id[:half])
        first = _live_n_events(dport, "grow")
        assert first == half
        client.append("grow", events[half:], sample_id[half:])
        second = _live_n_events(dport, "grow")
        assert second == len(events)
        client.close_session("grow")


def test_dashboard_survives_worker_crash(
    serve_harness, build_archive, tmp_path, rng
):
    archive = tmp_path / "in.npz"
    build_archive(archive, rng)
    h, port = serve_harness(dashboard=True)
    dport = h.server.dashboard_port

    submit_archive(archive, port=port, session="alpha")
    status, before = _get(dport, "/report?session=alpha")
    assert status == 200

    worker = h.server.workers[route_session("alpha", len(h.server.workers))]
    assert "alpha" in worker.sessions  # the GET above re-opened it
    worker.process.kill()
    worker.process.join(timeout=10)

    status, after = _get(dport, "/report?session=alpha")
    assert status == 200
    assert after == before, "post-crash rendering drifted"
    assert worker.restarts == 1


def test_index_sessions_and_view_endpoints(
    serve_harness, build_archive, tmp_path, rng
):
    archive = tmp_path / "in.npz"
    build_archive(archive, rng)
    h, port = serve_harness(dashboard=True)
    dport = h.server.dashboard_port

    submit_archive(archive, port=port, session="alpha")
    status, body = _get(dport, "/sessions")
    assert status == 200
    listed = json.loads(body)["sessions"]
    assert {"name": "alpha", "open": False} in listed

    status, body = _get(dport, "/")
    assert status == 200
    assert b"/view?session=alpha" in body

    status, body = _get(dport, "/view?session=alpha")
    assert status == 200
    assert b"/report?session=alpha" in body  # the polling iframe


def test_dashboard_error_statuses(serve_harness):
    h, port = serve_harness(dashboard=True)
    dport = h.server.dashboard_port

    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _get(dport, "/report?session=nosuch")
    assert exc_info.value.code == 404

    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _get(dport, "/report")
    assert exc_info.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _get(dport, "/definitely-not-a-route")
    assert exc_info.value.code == 404
