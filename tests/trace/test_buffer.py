"""Unit and model-based tests for the PT circular buffer."""

from collections import deque

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace.buffer import CircularBuffer


class TestBasics:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CircularBuffer(0)

    def test_push_below_capacity(self):
        b = CircularBuffer(4)
        for v in (1, 2, 3):
            b.push(v)
        assert list(b.drain()) == [1, 2, 3]

    def test_overwrite_keeps_most_recent(self):
        b = CircularBuffer(3)
        for v in range(6):
            b.push(v)
        assert list(b.drain()) == [3, 4, 5]
        assert b.n_overwritten == 3

    def test_drain_clears(self):
        b = CircularBuffer(3)
        b.push(1)
        b.drain()
        assert len(b) == 0
        assert list(b.drain()) == []

    def test_push_many_larger_than_capacity(self):
        b = CircularBuffer(4)
        b.push_many(np.arange(10))
        assert list(b.drain()) == [6, 7, 8, 9]

    def test_push_many_wraparound(self):
        b = CircularBuffer(4)
        b.push_many(np.array([0, 1, 2]))
        b.push_many(np.array([3, 4]))
        assert list(b.drain()) == [1, 2, 3, 4]

    def test_push_many_empty(self):
        b = CircularBuffer(4)
        b.push_many(np.array([], dtype=np.int64))
        assert len(b) == 0

    def test_n_pushed_counts_everything(self):
        b = CircularBuffer(2)
        b.push_many(np.arange(7))
        assert b.n_pushed == 7


@given(
    ops=st.lists(
        st.one_of(
            st.integers(0, 1000),  # single push
            st.lists(st.integers(0, 1000), min_size=0, max_size=20),  # batch
        ),
        max_size=40,
    ),
    capacity=st.integers(1, 16),
)
def test_matches_deque_model(ops, capacity):
    """Property: the buffer always equals a maxlen-bounded deque."""
    buf = CircularBuffer(capacity)
    model: deque = deque(maxlen=capacity)
    for op in ops:
        if isinstance(op, int):
            buf.push(op)
            model.append(op)
        else:
            buf.push_many(np.array(op, dtype=np.int64))
            model.extend(op)
    assert list(buf.drain()) == list(model)
