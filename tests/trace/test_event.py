"""Tests for the trace event record."""

import numpy as np
import pytest

from repro.trace.event import (
    EVENT_DTYPE,
    LoadClass,
    concat_events,
    empty_events,
    make_events,
)


class TestMakeEvents:
    def test_default_timestamps_are_consecutive(self):
        ev = make_events(ip=[1, 2, 3], addr=[10, 20, 30])
        assert np.array_equal(ev["t"], [0, 1, 2])

    def test_scalar_broadcast_ip(self):
        ev = make_events(ip=7, addr=[1, 2, 3])
        assert np.array_equal(ev["ip"], [7, 7, 7])

    def test_scalar_broadcast_addr(self):
        ev = make_events(ip=[1, 2], addr=9)
        assert np.array_equal(ev["addr"], [9, 9])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_events(ip=[1, 2], addr=[1, 2, 3])

    def test_class_assignment(self):
        ev = make_events(ip=[1], addr=[1], cls=LoadClass.CONSTANT)
        assert ev["cls"][0] == 0

    def test_per_event_classes(self):
        ev = make_events(ip=[1, 2], addr=[1, 2], cls=[1, 2])
        assert list(ev["cls"]) == [1, 2]

    def test_n_const_and_fn(self):
        ev = make_events(ip=[1], addr=[1], n_const=5, fn=3)
        assert ev["n_const"][0] == 5
        assert ev["fn"][0] == 3


class TestEmptyAndConcat:
    def test_empty(self):
        assert len(empty_events()) == 0
        assert empty_events().dtype == EVENT_DTYPE

    def test_zeroed(self):
        ev = empty_events(3)
        assert len(ev) == 3
        assert ev["addr"].sum() == 0

    def test_concat_preserves_order(self):
        a = make_events(ip=[1], addr=[1])
        b = make_events(ip=[2], addr=[2])
        c = concat_events([a, b])
        assert list(c["ip"]) == [1, 2]

    def test_concat_empty_list(self):
        assert len(concat_events([])) == 0

    def test_concat_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            concat_events([np.zeros(2)])


class TestLoadClass:
    def test_values_are_stable(self):
        # the on-disk format depends on these numbers
        assert int(LoadClass.CONSTANT) == 0
        assert int(LoadClass.STRIDED) == 1
        assert int(LoadClass.IRREGULAR) == 2
