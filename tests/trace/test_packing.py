"""Tests for strided-run trace packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.event import LoadClass, make_events
from repro.trace.packing import (
    pack_strided_runs,
    packed_bytes,
    unpack_strided_runs,
)


def _strided(n, stride=8, ip=5):
    return make_events(ip=ip, addr=np.arange(n) * stride, cls=LoadClass.STRIDED)


class TestPack:
    def test_long_run_collapses(self):
        packed = pack_strided_runs(_strided(100))
        assert packed.n_records == 1
        assert packed.runs["length"][0] == 100
        assert packed.runs["stride"][0] == 8
        assert packed.packing_ratio == 100.0

    def test_irregular_never_packs(self):
        ev = make_events(ip=5, addr=np.arange(50) * 8, cls=LoadClass.IRREGULAR)
        packed = pack_strided_runs(ev)
        assert packed.n_records == 50

    def test_different_ips_break_runs(self):
        ev = _strided(10)
        ev["ip"][5] = 99
        packed = pack_strided_runs(ev)
        assert packed.n_records >= 2

    def test_stride_change_breaks_run(self):
        addr = np.concatenate([np.arange(10) * 8, 80 + np.arange(10) * 16])
        ev = make_events(ip=5, addr=addr, cls=LoadClass.STRIDED)
        packed = pack_strided_runs(ev)
        assert packed.n_records == 2

    def test_short_runs_stay_singletons(self):
        packed = pack_strided_runs(_strided(2), min_run=3)
        assert packed.n_records == 2
        assert np.all(packed.runs["length"] == 1)

    def test_repeated_address_not_a_run(self):
        ev = make_events(ip=5, addr=np.zeros(20), cls=LoadClass.STRIDED)
        packed = pack_strided_runs(ev)
        assert packed.n_records == 20

    def test_proxy_records_never_pack(self):
        ev = _strided(10)
        ev["n_const"] = 1
        packed = pack_strided_runs(ev)
        assert packed.n_records == 10

    def test_timestamp_gap_breaks_run(self):
        ev = _strided(10)
        ev["t"] = np.arange(10) * 2  # non-consecutive loads
        packed = pack_strided_runs(ev)
        assert packed.n_records == 10

    def test_bad_args(self):
        with pytest.raises(TypeError):
            pack_strided_runs(np.zeros(3))
        with pytest.raises(ValueError):
            pack_strided_runs(_strided(5), min_run=1)

    def test_empty(self):
        packed = pack_strided_runs(_strided(0))
        assert packed.n_records == 0
        assert unpack_strided_runs(packed).size == 0


class TestRoundTrip:
    def test_pure_strided(self):
        ev = _strided(64)
        assert np.array_equal(unpack_strided_runs(pack_strided_runs(ev)), ev)

    def test_mixed_stream(self, rng):
        parts = []
        t = 0
        for k in range(6):
            n = int(rng.integers(2, 30))
            if k % 2 == 0:
                p = make_events(ip=7, addr=1000 * k + np.arange(n) * 8, cls=LoadClass.STRIDED)
            else:
                p = make_events(ip=9, addr=rng.integers(0, 4096, n), cls=LoadClass.IRREGULAR)
            p["t"] = t + np.arange(n)
            t += n
            parts.append(p)
        ev = np.concatenate(parts)
        assert np.array_equal(unpack_strided_runs(pack_strided_runs(ev)), ev)


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(
        st.tuples(
            st.sampled_from([1, 2]),  # class
            st.integers(1, 20),  # length
            st.sampled_from([4, 8, 64]),  # stride
        ),
        min_size=1,
        max_size=8,
    )
)
def test_roundtrip_property(segments):
    """Property: pack -> unpack is the identity on any segment mix."""
    parts = []
    t = 0
    base = 0
    for cls, n, stride in segments:
        p = make_events(ip=cls * 13, addr=base + np.arange(n) * stride, cls=cls)
        p["t"] = t + np.arange(n)
        t += n
        base += n * stride + 4096
        parts.append(p)
    ev = np.concatenate(parts)
    packed = pack_strided_runs(ev)
    assert np.array_equal(unpack_strided_runs(packed), ev)
    assert packed.n_records <= len(ev)
    assert int(packed.runs["length"].sum()) == len(ev)


class TestPackedBytes:
    def test_savings_on_strided(self):
        ev = _strided(1000)
        packed = pack_strided_runs(ev)
        assert packed_bytes(packed) < 8 * len(ev) / 10

    def test_payload32_halves_singletons(self):
        ev = make_events(ip=5, addr=np.arange(10), cls=LoadClass.IRREGULAR)
        packed = pack_strided_runs(ev)
        assert packed_bytes(packed, payload32=True) == packed_bytes(packed) // 2
