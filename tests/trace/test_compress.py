"""Tests for the rho/kappa decompression math (Eqs. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import (
    compression_ratio,
    decompress_counts,
    sample_ratio,
    sample_ratio_from,
    suppressed_count,
)
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig


class TestKappa:
    def test_uncompressed_trace_kappa_is_one(self):
        ev = make_events(ip=1, addr=np.arange(10))
        assert compression_ratio(ev) == 1.0

    def test_kappa_formula(self):
        ev = make_events(ip=1, addr=np.arange(10), n_const=1)
        # A_const = 10 over A = 10 records
        assert compression_ratio(ev) == 2.0

    def test_empty_trace(self):
        ev = make_events(ip=1, addr=np.arange(0))
        assert compression_ratio(ev) == 1.0

    def test_suppressed_count(self):
        ev = make_events(ip=1, addr=np.arange(4), n_const=[0, 2, 0, 3])
        assert suppressed_count(ev) == 5

    def test_decompress_counts(self):
        ev = make_events(ip=1, addr=np.arange(4), n_const=[0, 2, 0, 3])
        assert decompress_counts(ev) == 9

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            compression_ratio(np.zeros(3))


class TestRho:
    def test_uncompressed_rho(self):
        ev = make_events(ip=1, addr=np.arange(100))
        # 10 samples of period 1000 cover 10_000 loads; 100 observed
        assert sample_ratio(10, 1000, ev) == 100.0

    def test_compression_lowers_rho(self):
        ev = make_events(ip=1, addr=np.arange(100), n_const=1)
        assert sample_ratio(10, 1000, ev) == 50.0

    def test_empty_sample(self):
        ev = make_events(ip=1, addr=np.arange(0))
        assert sample_ratio(10, 1000, ev) == 1.0

    def test_sample_ratio_from_collection(self):
        ev = make_events(ip=1, addr=np.arange(10_000))
        cfg = SamplingConfig(period=1000, buffer_capacity=100, fill_mean=1.0, fill_jitter=0.0)
        res = collect_sampled_trace(ev, config=cfg)
        # exactly 100 records per 1000 loads -> rho = 10
        assert sample_ratio_from(res) == pytest.approx(10.0)


@given(
    n=st.integers(1, 200),
    n_const=st.integers(0, 5),
)
def test_kappa_rho_consistency(n, n_const):
    """Property: rho * kappa * A == |sigma| * period (Eq. 1 rearranged)."""
    ev = make_events(ip=1, addr=np.arange(n), n_const=n_const)
    period, n_samples = 1000, 7
    rho = sample_ratio(n_samples, period, ev)
    kappa = compression_ratio(ev)
    assert rho * kappa * n == pytest.approx(n_samples * period)
    assert kappa >= 1.0
