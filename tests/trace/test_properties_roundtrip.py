"""Property/round-trip tests over random arrays for the trace layer.

Complements the example-based suites: hypothesis drives randomized event
streams through packing, compression accounting, sampling geometry,
guard filtering, and the archive format, checking the invariants each
module promises (lossless round trips, conservation of counts, bounds).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.compress import (
    compression_ratio,
    decompress_counts,
    sample_ratio,
    suppressed_count,
)
from repro.trace.event import LoadClass, concat_events, make_events
from repro.trace.guards import RegionOfInterest, apply_guards
from repro.trace.packing import pack_strided_runs, unpack_strided_runs
from repro.trace.sampler import SamplingConfig, sample_bounds
from repro.trace.tracefile import TraceMeta, read_trace, write_trace

# -- strategies ---------------------------------------------------------------------

#: a segment is (kind, length); kinds build qualitatively different runs
_segment = st.tuples(st.sampled_from(["strided", "irregular", "constant", "repeat"]),
                     st.integers(min_value=1, max_value=12))


def _build_stream(segments, seed):
    """Deterministically expand segment specs into one event stream."""
    rng = np.random.default_rng(seed)
    parts = []
    base = 0x1000_0000
    for i, (kind, n) in enumerate(segments):
        ip = 0x40_0000 + i % 5
        if kind == "strided":
            stride = int(rng.choice([-64, -8, 8, 64, 256]))
            addr = base + stride * np.arange(n) if stride > 0 else base - stride * n + stride * np.arange(n)
            cls = int(LoadClass.STRIDED)
        elif kind == "irregular":
            addr = base + rng.integers(0, 1 << 20, n) * 8
            cls = int(LoadClass.IRREGULAR)
        elif kind == "constant":
            addr = np.full(n, base + 0x500)
            cls = int(LoadClass.CONSTANT)
        else:  # repeat: same address, strided class (must never pack as a run)
            addr = np.full(n, base + 0x900)
            cls = int(LoadClass.STRIDED)
        n_const = rng.integers(0, 4, n) if kind == "constant" else 0
        parts.append(
            make_events(ip=np.full(n, ip), addr=np.asarray(addr, dtype=np.uint64),
                        cls=cls, n_const=n_const)
        )
        base += (1 + i) * 0x10_0000
    events = concat_events(parts)
    events["t"] = np.arange(len(events), dtype=np.uint64)
    return events


# -- packing ------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    segments=st.lists(_segment, min_size=1, max_size=10),
    seed=st.integers(min_value=0, max_value=2**31),
    min_run=st.integers(min_value=2, max_value=6),
)
def test_pack_unpack_identity_on_random_streams(segments, seed, min_run):
    events = _build_stream(segments, seed)
    packed = pack_strided_runs(events, min_run=min_run)
    restored = unpack_strided_runs(packed)
    assert restored.tobytes() == events.tobytes(), "packing must be lossless"
    assert packed.n_records <= len(events)
    assert packed.packing_ratio >= 1.0
    # run bookkeeping is conserved: lengths sum to the original count
    assert int(packed.runs["length"].sum()) == len(events)


# -- compression accounting ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n_const=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=100)
)
def test_kappa_and_decompress_counts_accounting(n_const):
    n = len(n_const)
    events = make_events(
        ip=np.arange(n), addr=np.arange(n) * 8, cls=int(LoadClass.CONSTANT),
        n_const=np.asarray(n_const, dtype=np.uint16),
    )
    a_const = sum(n_const)
    assert suppressed_count(events) == a_const
    assert decompress_counts(events) == n + a_const  # A + A_const, exactly
    kappa = compression_ratio(events)
    assert kappa == 1.0 + a_const / n  # Eq. 2
    assert kappa >= 1.0
    # rho (Eq. 1): |sigma|*(w+z) spread over the implied accesses
    rho = sample_ratio(4, 1000, events)
    assert np.isclose(rho * decompress_counts(events), 4 * 1000)


@settings(max_examples=40, deadline=None)
@given(
    a=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=40),
    b=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=40),
)
def test_kappa_merges_as_weighted_mean(a, b):
    """Concatenating streams merges kappa by record-weighted average —
    the same associativity contract the parallel engine's merges rely on."""
    mk = lambda xs: make_events(  # noqa: E731
        ip=np.arange(len(xs)), addr=np.arange(len(xs)),
        cls=int(LoadClass.CONSTANT), n_const=np.asarray(xs, dtype=np.uint16),
    )
    ev_a, ev_b = mk(a), mk(b)
    both = concat_events([ev_a, ev_b])
    expected = (
        len(a) * compression_ratio(ev_a) + len(b) * compression_ratio(ev_b)
    ) / (len(a) + len(b))
    assert np.isclose(compression_ratio(both), expected)


# -- sampling geometry (w/z accounting) ---------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    n_loads=st.integers(min_value=0, max_value=10_000_000),
    period=st.integers(min_value=1, max_value=100_000),
    capacity=st.integers(min_value=1, max_value=4096),
    jitter=st.sampled_from([0.0, 0.15]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_sample_bounds_accounting(n_loads, period, capacity, jitter, seed):
    config = SamplingConfig(
        period=period, buffer_capacity=capacity, fill_jitter=jitter, seed=seed
    )
    triggers, budgets = sample_bounds(n_loads, config)
    assert len(triggers) == n_loads // period == len(budgets)
    if len(triggers):
        assert triggers[0] == period
        assert triggers[-1] <= n_loads
        assert np.all(np.diff(triggers) == period)  # w+z spacing is exact
    assert np.all(budgets >= 1)
    assert np.all(budgets <= capacity)  # w never exceeds the PT buffer
    # the stream is a pure function of the config: replaying it is identical
    triggers2, budgets2 = sample_bounds(n_loads, config)
    assert np.array_equal(triggers, triggers2)
    assert np.array_equal(budgets, budgets2)


@settings(max_examples=40, deadline=None)
@given(
    n_loads=st.integers(min_value=0, max_value=1_000_000),
    period=st.integers(min_value=1, max_value=50_000),
    capacity=st.integers(min_value=1, max_value=2048),
)
def test_sample_bounds_deterministic_fill(n_loads, period, capacity):
    config = SamplingConfig(period=period, buffer_capacity=capacity, fill_jitter=0.0)
    _, budgets = sample_bounds(n_loads, config)
    expected = max(1, round(capacity * config.fill_mean))
    assert np.all(budgets == expected)


# -- guards -------------------------------------------------------------------------

_ranges = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 20),
              st.integers(min_value=1, max_value=1 << 12)),
    min_size=0, max_size=4,
).map(lambda spans: [(lo, lo + width) for lo, width in spans])


@settings(max_examples=60, deadline=None)
@given(
    ranges=_ranges,
    ips=st.lists(st.integers(min_value=0, max_value=1 << 21), min_size=1, max_size=200),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_apply_guards_conserves_and_filters(ranges, ips, seed):
    rng = np.random.default_rng(seed)
    n = len(ips)
    events = make_events(
        ip=np.asarray(ips, dtype=np.uint64),
        addr=rng.integers(0, 1 << 30, n),
        cls=int(LoadClass.IRREGULAR),
    )
    roi = RegionOfInterest(ranges=ranges)
    admitted, n_suppressed = apply_guards(events, roi)
    assert len(admitted) + n_suppressed == n  # every record accounted for
    if roi.is_unrestricted:
        assert n_suppressed == 0 and len(admitted) == n
    else:
        in_roi = np.array(
            [any(lo <= ip < hi for lo, hi in ranges) for ip in ips]
        )
        assert np.array_equal(admitted.tobytes(), events[in_roi].tobytes())
        # idempotent: the admitted stream passes its own guards untouched
        again, n2 = apply_guards(admitted, roi)
        assert n2 == 0
        assert again.tobytes() == admitted.tobytes()


# -- archive round trip -------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    segments=st.lists(_segment, min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**31),
    with_sids=st.booleans(),
    atomic=st.booleans(),
)
def test_archive_round_trip_on_random_streams(tmp_path_factory, segments, seed,
                                              with_sids, atomic):
    events = _build_stream(segments, seed)
    n = len(events)
    sids = None
    if with_sids:
        bounds = np.sort(np.random.default_rng(seed).integers(0, n + 1, 3))
        sids = np.searchsorted(bounds, np.arange(n), side="right").astype(np.int32)
    meta = TraceMeta(module="prop", n_loads_total=n * 3, n_samples=4)
    path = tmp_path_factory.mktemp("prop") / "t.npz"
    write_trace(path, events, meta, sids, atomic=atomic)
    got_events, got_meta, got_sids = read_trace(path)
    assert got_events.tobytes() == events.tobytes()
    assert got_meta.module == meta.module
    assert got_meta.n_loads_total == meta.n_loads_total
    if with_sids:
        assert np.array_equal(got_sids, sids)
    else:
        assert got_sids is None
