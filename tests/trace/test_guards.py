"""Tests for PT hardware address guards (ROI tracing)."""

import numpy as np
import pytest

from repro.trace.event import make_events
from repro.trace.guards import MAX_GUARD_RANGES, RegionOfInterest, apply_guards


class TestRegionOfInterest:
    def test_empty_is_unrestricted(self):
        roi = RegionOfInterest()
        assert roi.is_unrestricted

    def test_range_validation(self):
        with pytest.raises(ValueError):
            RegionOfInterest(ranges=[(10, 10)])

    def test_range_budget_enforced(self):
        ranges = [(i * 100, i * 100 + 10) for i in range(MAX_GUARD_RANGES + 1)]
        with pytest.raises(ValueError):
            RegionOfInterest(ranges=ranges)

    def test_contains(self):
        roi = RegionOfInterest(ranges=[(100, 200), (500, 600)])
        ips = np.array([99, 100, 199, 200, 550, 999])
        assert list(roi.contains(ips)) == [False, True, True, False, True, False]

    def test_from_functions_coalesces(self):
        fn_ranges = {"a": (0, 100), "b": (100, 200), "c": (500, 600)}
        roi = RegionOfInterest.from_functions(["a", "b", "c"], fn_ranges)
        assert roi.ranges == [(0, 200), (500, 600)]

    def test_from_functions_unknown(self):
        with pytest.raises(KeyError):
            RegionOfInterest.from_functions(["ghost"], {})


class TestApplyGuards:
    def test_unrestricted_passthrough(self):
        ev = make_events(ip=[1, 2], addr=[1, 2])
        out, suppressed = apply_guards(ev, RegionOfInterest())
        assert len(out) == 2 and suppressed == 0

    def test_filters_by_ip(self):
        ev = make_events(ip=[100, 300, 150], addr=[1, 2, 3])
        out, suppressed = apply_guards(ev, RegionOfInterest(ranges=[(100, 200)]))
        assert list(out["ip"]) == [100, 150]
        assert suppressed == 1

    def test_timestamps_preserved(self):
        """The load counter runs outside the ROI: t is untouched."""
        ev = make_events(ip=[100, 300, 150], addr=[1, 2, 3])
        out, _ = apply_guards(ev, RegionOfInterest(ranges=[(100, 200)]))
        assert list(out["t"]) == [0, 2]

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            apply_guards(np.zeros(3), RegionOfInterest())
