"""Tests for sampling configuration and window geometry."""

import numpy as np
import pytest

from repro.trace.sampler import SamplingConfig, sample_bounds


class TestSamplingConfig:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SamplingConfig(period=0, buffer_capacity=8)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SamplingConfig(period=10, buffer_capacity=0)

    def test_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            SamplingConfig(period=10, buffer_capacity=8, fill_mean=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(period=10, buffer_capacity=8, fill_jitter=-1)

    def test_rejects_bad_trigger(self):
        with pytest.raises(ValueError):
            SamplingConfig(period=10, buffer_capacity=8, trigger="cycles")


class TestSampleBounds:
    def test_trigger_spacing(self):
        cfg = SamplingConfig(period=100, buffer_capacity=16, fill_jitter=0.0)
        triggers, budgets = sample_bounds(1000, cfg)
        assert np.array_equal(triggers, np.arange(1, 11) * 100)
        assert len(budgets) == 10

    def test_deterministic_fill(self):
        cfg = SamplingConfig(period=100, buffer_capacity=100, fill_mean=0.5, fill_jitter=0.0)
        _, budgets = sample_bounds(500, cfg)
        assert np.all(budgets == 50)

    def test_jitter_varies_budgets_but_is_seeded(self):
        cfg = SamplingConfig(period=10, buffer_capacity=1000, fill_jitter=0.2, seed=1)
        _, b1 = sample_bounds(10_000, cfg)
        _, b2 = sample_bounds(10_000, cfg)
        assert np.array_equal(b1, b2)
        assert len(np.unique(b1)) > 1

    def test_budgets_at_least_one(self):
        cfg = SamplingConfig(period=10, buffer_capacity=1, fill_mean=0.2, fill_jitter=0.0)
        _, budgets = sample_bounds(100, cfg)
        assert np.all(budgets >= 1)

    def test_short_run_no_triggers(self):
        cfg = SamplingConfig(period=1000, buffer_capacity=8)
        triggers, _ = sample_bounds(999, cfg)
        assert len(triggers) == 0
