"""Tests for sampled and full trace collection."""

import numpy as np
import pytest

from repro.trace.collector import collect_full_trace, collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig


def _stream(n: int) -> np.ndarray:
    return make_events(ip=1, addr=np.arange(n, dtype=np.uint64))


class TestSampledCollection:
    def test_requires_config(self):
        with pytest.raises(ValueError):
            collect_sampled_trace(_stream(10))

    def test_rejects_unsorted(self):
        ev = _stream(10)
        ev["t"] = ev["t"][::-1]
        cfg = SamplingConfig(period=5, buffer_capacity=2)
        with pytest.raises(ValueError):
            collect_sampled_trace(ev, config=cfg)

    def test_window_geometry_continuous(self):
        """With full fill, each sample is the last w records before its trigger."""
        cfg = SamplingConfig(period=100, buffer_capacity=10, fill_mean=1.0, fill_jitter=0.0)
        res = collect_sampled_trace(_stream(1000), config=cfg)
        assert res.n_samples == 10
        samples = list(res.samples())
        assert len(samples) == 10
        for k, s in enumerate(samples):
            trigger = (k + 1) * 100
            assert list(s["t"]) == list(range(trigger - 10, trigger))

    def test_window_geometry_sampled_only(self):
        """MemGaze-opt records the first w after each sample start."""
        cfg = SamplingConfig(period=100, buffer_capacity=10, fill_mean=1.0, fill_jitter=0.0)
        res = collect_sampled_trace(_stream(1000), config=cfg, mode="sampled_only")
        for k, s in enumerate(res.samples()):
            assert list(s["t"]) == list(range(k * 100, k * 100 + 10))

    def test_sample_fraction_matches_w_over_period(self):
        cfg = SamplingConfig(period=1000, buffer_capacity=100, fill_mean=0.5, fill_jitter=0.0)
        res = collect_sampled_trace(_stream(100_000), config=cfg)
        frac = len(res.events) / 100_000
        assert frac == pytest.approx(0.05, rel=0.05)

    def test_mean_w_reflects_fill(self):
        cfg = SamplingConfig(period=500, buffer_capacity=100, fill_mean=0.6, fill_jitter=0.0)
        res = collect_sampled_trace(_stream(50_000), config=cfg)
        assert res.mean_w == pytest.approx(60, abs=1)

    def test_empty_stream(self):
        cfg = SamplingConfig(period=10, buffer_capacity=4)
        res = collect_sampled_trace(_stream(0), config=cfg)
        assert len(res.events) == 0
        assert res.n_samples == 0

    def test_bad_mode_rejected(self):
        cfg = SamplingConfig(period=10, buffer_capacity=4)
        with pytest.raises(ValueError):
            collect_sampled_trace(_stream(10), config=cfg, mode="bogus")

    def test_time_trigger_requires_timeline(self):
        cfg = SamplingConfig(period=10, buffer_capacity=4, trigger="time")
        with pytest.raises(ValueError):
            collect_sampled_trace(_stream(100), config=cfg)

    def test_time_trigger_uses_timeline(self):
        """With a bursty load rate, time triggers oversample slow phases."""
        n = 1000
        ev = _stream(n)
        # first half of loads happens in 10% of the time
        timeline = np.concatenate(
            [np.linspace(0, 100, n // 2), np.linspace(100, 1000, n // 2)]
        ).astype(np.int64)
        cfg = SamplingConfig(
            period=100, buffer_capacity=20, fill_mean=1.0, fill_jitter=0.0, trigger="time"
        )
        res = collect_sampled_trace(ev, config=cfg, load_rate=timeline)
        # 10 triggers; only ~1 lands in the fast phase
        first_half = (res.events["t"] < n // 2).sum()
        assert first_half < len(res.events) / 3

    def test_sample_id_aligns(self):
        cfg = SamplingConfig(period=100, buffer_capacity=10, fill_mean=1.0, fill_jitter=0.0)
        res = collect_sampled_trace(_stream(1000), config=cfg)
        assert len(res.sample_id) == len(res.events)
        assert list(np.unique(res.sample_id)) == list(range(10))


class TestFullCollection:
    def test_no_drops(self):
        res = collect_full_trace(_stream(100), drop_fraction=0.0)
        assert res.n_dropped == 0
        assert len(res.events) == 100

    def test_target_drop_fraction_respected(self):
        res = collect_full_trace(_stream(400_000), drop_fraction=0.4, burst_records=1024)
        assert res.drop_fraction == pytest.approx(0.4, abs=0.05)
        assert res.n_observed_total == 400_000
        assert len(res.events) + res.n_dropped == 400_000

    def test_default_drop_in_paper_range(self):
        res = collect_full_trace(_stream(200_000), seed=3)
        assert 0.25 <= res.drop_fraction <= 0.55

    def test_drop_records_account_for_losses(self):
        res = collect_full_trace(_stream(100_000), drop_fraction=0.3, burst_records=512)
        assert res.drop_records[:, 1].sum() == res.n_dropped

    def test_bursts_are_contiguous(self):
        res = collect_full_trace(_stream(10_000), drop_fraction=0.5, burst_records=100)
        kept_t = res.events["t"].astype(np.int64)
        gaps = np.diff(kept_t)
        # every gap is either 1 or a multiple of the burst size plus 1
        assert np.all((gaps == 1) | ((gaps - 1) % 100 == 0))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            collect_full_trace(_stream(10), drop_fraction=1.0)

    def test_empty_stream(self):
        res = collect_full_trace(_stream(0))
        assert res.n_dropped == 0
        assert res.drop_fraction == 0.0
