"""Tests for the on-disk trace format."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.trace.event import make_events
from repro.trace.tracefile import (
    TraceFormatError,
    TraceMeta,
    iter_trace_chunks,
    packet_bytes,
    read_trace,
    read_trace_meta,
    write_trace,
)


@pytest.fixture
def events():
    return make_events(ip=[1, 2, 3], addr=[10, 20, 30], cls=[0, 1, 2], n_const=[0, 1, 2])


class TestRoundTrip:
    def test_events_roundtrip(self, tmp_path, events):
        meta = TraceMeta(module="m", period=100, buffer_capacity=8)
        size = write_trace(tmp_path / "t.npz", events, meta)
        assert size > 0
        back, meta2, sid = read_trace(tmp_path / "t.npz")
        assert np.array_equal(back, events)
        assert meta2.module == "m"
        assert meta2.period == 100
        assert sid is None

    def test_sample_id_roundtrip(self, tmp_path, events):
        sid = np.array([0, 0, 1], dtype=np.int32)
        write_trace(tmp_path / "t.npz", events, TraceMeta(), sample_id=sid)
        _, _, sid2 = read_trace(tmp_path / "t.npz")
        assert np.array_equal(sid, sid2)

    def test_source_map_roundtrip(self, tmp_path, events):
        meta = TraceMeta(source_map={17: ("f", "file.c", 3)})
        write_trace(tmp_path / "t.npz", events, meta)
        _, meta2, _ = read_trace(tmp_path / "t.npz")
        assert meta2.source_map[17] == ("f", "file.c", 3)

    def test_extension_appended(self, tmp_path, events):
        size = write_trace(tmp_path / "noext", events, TraceMeta())
        assert (tmp_path / "noext.npz").exists()
        assert size == (tmp_path / "noext.npz").stat().st_size

    def test_sample_id_length_checked(self, tmp_path, events):
        with pytest.raises(ValueError):
            write_trace(tmp_path / "t.npz", events, TraceMeta(), sample_id=np.zeros(99, np.int32))

    def test_wrong_dtype_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_trace(tmp_path / "t.npz", np.zeros(4), TraceMeta())


def _big_trace(n=5000, n_samples=17, seed=0):
    rng = derive_rng(seed, "tracefile-big-trace")
    ev = make_events(
        ip=rng.integers(0, 30, n),
        addr=rng.integers(0, 1 << 16, n),
        cls=rng.choice([0, 1, 2], n).astype(np.uint8),
    )
    sid = np.sort(rng.integers(0, n_samples, n)).astype(np.int32)
    return ev, sid


class TestStreaming:
    def test_meta_only_read(self, tmp_path, events):
        write_trace(tmp_path / "t.npz", events, TraceMeta(module="x", period=7))
        meta = read_trace_meta(tmp_path / "t.npz")
        assert meta.module == "x" and meta.period == 7

    @pytest.mark.parametrize("chunk", [1, 37, 1000, 5000, 99_999])
    def test_chunks_reassemble_exactly(self, tmp_path, chunk):
        ev, sid = _big_trace()
        write_trace(tmp_path / "t.npz", ev, TraceMeta(), sample_id=sid)
        parts = list(iter_trace_chunks(tmp_path / "t.npz", chunk_size=chunk))
        assert np.array_equal(np.concatenate([e for e, _ in parts]), ev)
        assert np.array_equal(np.concatenate([s for _, s in parts]), sid)

    def test_chunks_are_sample_aligned(self, tmp_path):
        ev, sid = _big_trace()
        write_trace(tmp_path / "t.npz", ev, TraceMeta(), sample_id=sid)
        parts = list(iter_trace_chunks(tmp_path / "t.npz", chunk_size=200))
        assert len(parts) > 1
        for (_, s1), (_, s2) in zip(parts, parts[1:]):
            assert s1[-1] != s2[0]

    def test_one_giant_sample_is_one_chunk(self, tmp_path):
        ev, _ = _big_trace(1000)
        sid = np.zeros(1000, dtype=np.int32)
        write_trace(tmp_path / "t.npz", ev, TraceMeta(), sample_id=sid)
        parts = list(iter_trace_chunks(tmp_path / "t.npz", chunk_size=50))
        assert len(parts) == 1 and len(parts[0][0]) == 1000

    def test_no_sample_id_member(self, tmp_path):
        ev, _ = _big_trace(500)
        write_trace(tmp_path / "t.npz", ev, TraceMeta())
        parts = list(iter_trace_chunks(tmp_path / "t.npz", chunk_size=128))
        assert all(s is None for _, s in parts)
        assert np.array_equal(np.concatenate([e for e, _ in parts]), ev)

    def test_unaligned_mode(self, tmp_path):
        ev, sid = _big_trace(500)
        write_trace(tmp_path / "t.npz", ev, TraceMeta(), sample_id=sid)
        parts = list(
            iter_trace_chunks(tmp_path / "t.npz", chunk_size=128, align_samples=False)
        )
        assert [len(e) for e, _ in parts[:-1]] == [128] * (len(parts) - 1)

    def test_empty_trace(self, tmp_path):
        ev = make_events(ip=np.empty(0), addr=np.empty(0))
        write_trace(tmp_path / "t.npz", ev, TraceMeta())
        assert list(iter_trace_chunks(tmp_path / "t.npz", chunk_size=4)) == []

    def test_chunk_size_validated(self, tmp_path, events):
        write_trace(tmp_path / "t.npz", events, TraceMeta())
        with pytest.raises(ValueError):
            list(iter_trace_chunks(tmp_path / "t.npz", chunk_size=0))

    def test_extension_appended_like_write(self, tmp_path, events):
        write_trace(tmp_path / "noext", events, TraceMeta())
        parts = list(iter_trace_chunks(tmp_path / "noext", chunk_size=10))
        assert np.array_equal(parts[0][0], events)


def _archive_without(src, dst, member):
    """Rewrite ``src`` as ``dst`` with one member removed."""
    import zipfile

    with zipfile.ZipFile(src) as zin, zipfile.ZipFile(dst, "w") as zout:
        for name in zin.namelist():
            if name != member:
                zout.writestr(name, zin.read(name))
    return dst


class TestTraceFormatError:
    def test_missing_events_member_is_typed(self, tmp_path, events):
        write_trace(tmp_path / "t.npz", events, TraceMeta())
        bad = _archive_without(tmp_path / "t.npz", tmp_path / "bad.npz", "events.npy")
        with pytest.raises(TraceFormatError) as err:
            read_trace(bad)
        assert err.value.key == "events"
        assert str(bad) in str(err.value)

    def test_missing_meta_member_is_typed(self, tmp_path, events):
        write_trace(tmp_path / "t.npz", events, TraceMeta())
        bad = _archive_without(tmp_path / "t.npz", tmp_path / "bad.npz", "meta.npy")
        with pytest.raises(TraceFormatError) as err:
            read_trace(bad)
        assert err.value.key == "meta"

    def test_iter_chunks_missing_events_is_typed(self, tmp_path, events):
        """The old opaque KeyError is now a TraceFormatError with context."""
        write_trace(tmp_path / "t.npz", events, TraceMeta())
        bad = _archive_without(tmp_path / "t.npz", tmp_path / "bad.npz", "events.npy")
        with pytest.raises(TraceFormatError) as err:
            list(iter_trace_chunks(bad, chunk_size=10))
        assert err.value.key == "events"
        assert err.value.path == str(bad)

    def test_read_trace_meta_missing_member_is_typed(self, tmp_path, events):
        write_trace(tmp_path / "t.npz", events, TraceMeta())
        bad = _archive_without(tmp_path / "t.npz", tmp_path / "bad.npz", "meta.npy")
        with pytest.raises(TraceFormatError):
            read_trace_meta(bad)

    def test_is_an_exception_subclass(self):
        assert issubclass(TraceFormatError, Exception)


class TestHealthMember:
    def test_written_archives_carry_checksums(self, tmp_path):
        import json
        import zipfile
        import zlib

        ev, sid = _big_trace()
        write_trace(tmp_path / "t.npz", ev, TraceMeta(), sample_id=sid)
        with zipfile.ZipFile(tmp_path / "t.npz") as zf:
            names = zf.namelist()
            assert names.index("meta.npy") < names.index("events.npy")
            assert names.index("health.npy") < names.index("events.npy")
            health = json.loads(np.load(zf.open("health.npy")).tobytes())
        assert health["n_events"] == len(ev)
        assert health["events_crc"][0] == zlib.crc32(
            ev[: health["chunk_events"]].tobytes()
        )

    def test_metrics_instrument_chunked_reads(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        ev, sid = _big_trace()
        write_trace(tmp_path / "t.npz", ev, TraceMeta(), sample_id=sid)
        metrics = MetricsRegistry()
        parts = list(
            iter_trace_chunks(tmp_path / "t.npz", chunk_size=1000, metrics=metrics)
        )
        assert metrics.counter("trace.chunks_read").value == len(parts)
        assert metrics.counter("trace.events_read").value == len(ev)


class TestMetaJson:
    def test_version_checked(self):
        bad = TraceMeta().to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            TraceMeta.from_json(bad)

    def test_extra_dict_roundtrips(self):
        meta = TraceMeta(extra={"spec": "str4", "opt": "O3"})
        assert TraceMeta.from_json(meta.to_json()).extra == meta.extra


class TestPacketBytes:
    def test_base_size(self, events):
        assert packet_bytes(events) == 8 * len(events)

    def test_two_reg_fraction(self, events):
        assert packet_bytes(events, two_reg_fraction=1.0) == 16 * len(events)

    def test_fraction_validated(self, events):
        with pytest.raises(ValueError):
            packet_bytes(events, two_reg_fraction=1.5)
