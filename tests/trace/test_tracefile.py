"""Tests for the on-disk trace format."""

import numpy as np
import pytest

from repro.trace.event import make_events
from repro.trace.tracefile import TraceMeta, packet_bytes, read_trace, write_trace


@pytest.fixture
def events():
    return make_events(ip=[1, 2, 3], addr=[10, 20, 30], cls=[0, 1, 2], n_const=[0, 1, 2])


class TestRoundTrip:
    def test_events_roundtrip(self, tmp_path, events):
        meta = TraceMeta(module="m", period=100, buffer_capacity=8)
        size = write_trace(tmp_path / "t.npz", events, meta)
        assert size > 0
        back, meta2, sid = read_trace(tmp_path / "t.npz")
        assert np.array_equal(back, events)
        assert meta2.module == "m"
        assert meta2.period == 100
        assert sid is None

    def test_sample_id_roundtrip(self, tmp_path, events):
        sid = np.array([0, 0, 1], dtype=np.int32)
        write_trace(tmp_path / "t.npz", events, TraceMeta(), sample_id=sid)
        _, _, sid2 = read_trace(tmp_path / "t.npz")
        assert np.array_equal(sid, sid2)

    def test_source_map_roundtrip(self, tmp_path, events):
        meta = TraceMeta(source_map={17: ("f", "file.c", 3)})
        write_trace(tmp_path / "t.npz", events, meta)
        _, meta2, _ = read_trace(tmp_path / "t.npz")
        assert meta2.source_map[17] == ("f", "file.c", 3)

    def test_extension_appended(self, tmp_path, events):
        size = write_trace(tmp_path / "noext", events, TraceMeta())
        assert (tmp_path / "noext.npz").exists()
        assert size == (tmp_path / "noext.npz").stat().st_size

    def test_sample_id_length_checked(self, tmp_path, events):
        with pytest.raises(ValueError):
            write_trace(tmp_path / "t.npz", events, TraceMeta(), sample_id=np.zeros(99, np.int32))

    def test_wrong_dtype_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_trace(tmp_path / "t.npz", np.zeros(4), TraceMeta())


class TestMetaJson:
    def test_version_checked(self):
        bad = TraceMeta().to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            TraceMeta.from_json(bad)

    def test_extra_dict_roundtrips(self):
        meta = TraceMeta(extra={"spec": "str4", "opt": "O3"})
        assert TraceMeta.from_json(meta.to_json()).extra == meta.extra


class TestPacketBytes:
    def test_base_size(self, events):
        assert packet_bytes(events) == 8 * len(events)

    def test_two_reg_fraction(self, events):
        assert packet_bytes(events, two_reg_fraction=1.0) == 16 * len(events)

    def test_fraction_validated(self, events):
        with pytest.raises(ValueError):
            packet_bytes(events, two_reg_fraction=1.5)
