"""Tests for the analytic overhead model (Fig. 7 mechanisms)."""

import pytest

from repro.trace.overhead import ExecCounts, OverheadModel, PTMode
from repro.trace.sampler import SamplingConfig


@pytest.fixture
def counts():
    return ExecCounts(n_instrs=1_000_000, n_loads=300_000, n_stores=50_000, n_ptwrites=100_000)


@pytest.fixture
def model():
    return OverheadModel()


@pytest.fixture
def sampling():
    return SamplingConfig(period=10_000, buffer_capacity=512, fill_mean=0.5, fill_jitter=0.0)


class TestExecCounts:
    def test_ratios(self, counts):
        assert counts.ptwrite_ratio == 0.1
        assert counts.store_ratio == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecCounts(n_instrs=-1, n_loads=0, n_stores=0, n_ptwrites=0)

    def test_zero_instrs(self):
        c = ExecCounts(0, 0, 0, 0)
        assert c.ptwrite_ratio == 0.0


class TestModes:
    def test_off_mode_near_baseline(self, model, counts):
        rep = model.report("p", counts, PTMode.OFF)
        # masked ptwrites retire like cheap instructions
        assert rep.overhead_pct < 15

    def test_continuous_much_slower_than_opt(self, model, counts, sampling):
        cont = model.report("p", counts, PTMode.CONTINUOUS, sampling)
        opt = model.report("p", counts, PTMode.SAMPLED_ONLY, sampling)
        assert cont.overhead_pct > 2 * opt.overhead_pct
        assert opt.overhead_pct > 0

    def test_sampled_only_requires_config(self, model, counts):
        with pytest.raises(ValueError):
            model.traced_time(counts, PTMode.SAMPLED_ONLY)

    def test_overhead_increases_with_ptwrite_ratio(self, model, sampling):
        lo = ExecCounts(1_000_000, 300_000, 0, 20_000)
        hi = ExecCounts(1_000_000, 300_000, 0, 200_000)
        r_lo = model.report("p", lo, PTMode.CONTINUOUS, sampling)
        r_hi = model.report("p", hi, PTMode.CONTINUOUS, sampling)
        assert r_hi.overhead_pct > r_lo.overhead_pct

    def test_store_interference_raises_overhead(self, model, sampling):
        low_store = ExecCounts(1_000_000, 300_000, 10_000, 100_000)
        high_store = ExecCounts(1_000_000, 300_000, 400_000, 100_000)
        r_low = model.report("p", low_store, PTMode.CONTINUOUS, sampling)
        r_high = model.report("p", high_store, PTMode.CONTINUOUS, sampling)
        assert r_high.overhead_pct > r_low.overhead_pct

    def test_kappa_scales_active_fraction(self, model, counts, sampling):
        t1 = model.traced_time(counts, PTMode.SAMPLED_ONLY, sampling, kappa=1.0)
        t2 = model.traced_time(counts, PTMode.SAMPLED_ONLY, sampling, kappa=2.0)
        assert t2 > t1


class TestReport:
    def test_slowdown_and_pct_consistent(self, model, counts, sampling):
        rep = model.report("phase", counts, PTMode.CONTINUOUS, sampling)
        assert rep.slowdown == pytest.approx(1 + rep.overhead_pct / 100)
        assert rep.phase == "phase"

    def test_baseline_excludes_ptwrites(self, model, counts):
        assert model.baseline_time(counts) == counts.n_instrs - counts.n_ptwrites
