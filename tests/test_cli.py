"""Tests for the memgaze command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ubench.npz"
    rc = main(
        [
            "trace",
            "--workload",
            "ubench:str4/irr",
            "--scale",
            "10",
            "--period",
            "4999",
            "--buffer",
            "512",
            "--deterministic",
            "-o",
            str(path),
        ]
    )
    assert rc == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_requires_workload_and_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "-o", "x.npz"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--workload", "ubench:irr"])

    def test_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "--workload", "x", "-o", "y", "--mode", "bogus"]
            )


class TestTrace:
    def test_writes_archive(self, trace_file):
        assert trace_file.exists()
        assert trace_file.stat().st_size > 0

    def test_unknown_family(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--workload", "nope:x", "-o", str(tmp_path / "t.npz")])

    def test_minivite_workload(self, tmp_path, capsys):
        path = tmp_path / "mv.npz"
        rc = main(
            ["trace", "--workload", "minivite:v3", "--scale", "7", "-o", str(path)]
        )
        assert rc == 0
        assert "miniVite v3" in capsys.readouterr().out

    def test_kvreuse_workload(self, tmp_path, capsys):
        path = tmp_path / "kv.npz"
        rc = main(
            ["trace", "--workload", "kvreuse:sessions", "--scale", "6", "-o", str(path)]
        )
        assert rc == 0
        assert "KV-reuse sessions" in capsys.readouterr().out

    def test_kvreuse_unknown_variant(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown kvreuse variant"):
            main(["trace", "--workload", "kvreuse:x", "-o", str(tmp_path / "t.npz")])


class TestInfo:
    def test_shows_metadata(self, trace_file, capsys):
        assert main(["info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "ubench str4/irr" in out
        assert "period (w+z):  4,999" in out
        assert "rho:" in out


class TestReport:
    def test_default_report_has_all_sections(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "footprint access diagnostics" in out
        assert "code windows" in out
        assert "hot memory regions" in out
        assert "working set" in out
        assert "sampling confidence" in out

    def test_selective_sections(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--functions"]) == 0
        out = capsys.readouterr().out
        assert "code windows" in out
        assert "hot memory regions" not in out

    def test_intervals(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--intervals", "4"]) == 0
        out = capsys.readouterr().out
        assert "locality over 4 access intervals" in out

    def test_confidence_flags(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--confidence"]) == 0
        out = capsys.readouterr().out
        assert "samples" in out

    def test_phases_section(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--phases"]) == 0
        out = capsys.readouterr().out
        assert "execution phases" in out
        assert "phase 0" in out


class TestPasses:
    def test_passes_subcommand_lists_registry(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        for name in ("diagnostics", "captures", "reuse", "hotspot", "roi", "heatmap"):
            assert name in out
        assert "requires:" in out

    def test_report_with_explicit_passes(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--passes", "diagnostics,hotspot"]) == 0
        out = capsys.readouterr().out
        assert "== pass: diagnostics ==" in out
        assert "== pass: hotspot ==" in out
        assert "code windows" not in out  # --passes replaces the sections

    def test_report_passes_pulls_dependencies(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--passes", "roi"]) == 0
        out = capsys.readouterr().out
        assert "== pass: roi ==" in out
        # hotspot ran as a dependency but only roi was asked for
        assert "== pass: hotspot ==" not in out

    def test_report_cache_sweep_pass(self, trace_file, capsys):
        rc = main(["report", str(trace_file), "--passes", "cache_sweep"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pass: cache_sweep" in out
        assert "hit ratio" in out and "predicted" in out

    def test_cache_kernel_flag_round_trips(self, trace_file, capsys, monkeypatch):
        monkeypatch.delenv("MEMGAZE_CACHE_KERNEL", raising=False)
        for kernel in ("vector", "python"):
            rc = main(
                ["report", str(trace_file), "--passes", "cache_sweep",
                 "--cache-kernel", kernel]
            )
            assert rc == 0
        capsys.readouterr()

    def test_bad_cache_kernel_env_is_a_clean_exit(self, trace_file, monkeypatch):
        """A typo'd MEMGAZE_CACHE_KERNEL must be the CLI's uniform
        SystemExit with the alternatives listed, not a bare ValueError."""
        monkeypatch.setenv("MEMGAZE_CACHE_KERNEL", "bogus")
        with pytest.raises(SystemExit) as exc:
            main(["report", str(trace_file), "--passes", "cache_sweep"])
        msg = str(exc.value)
        assert msg.startswith("memgaze report:")
        assert "auto" in msg and "vector" in msg and "python" in msg

    def test_unknown_pass_exits_with_alternatives(self, trace_file):
        with pytest.raises(SystemExit) as exc:
            main(["report", str(trace_file), "--passes", "diagnostic"])
        msg = str(exc.value)
        assert "unknown analysis pass" in msg
        assert "diagnostics" in msg  # close match suggested
        assert "hotspot" in msg  # registry listed

    def test_report_journal_proves_single_scan(self, trace_file, tmp_path):
        journal = tmp_path / "j.jsonl"
        rc = main(
            [
                "report",
                str(trace_file),
                "--passes",
                "diagnostics,captures,reuse,hotspot",
                "--journal",
                str(journal),
            ]
        )
        assert rc == 0
        recs = [json.loads(l) for l in journal.read_text().splitlines()]
        scans = [r for r in recs if r.get("event") == "shard-analyzed"]
        assert scans and all(r["n_passes"] == 4 for r in scans)


class TestObservability:
    def test_trace_journal_lines_parse(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        rc = main(
            ["trace", "--workload", "ubench:str4", "--scale", "9",
             "--period", "999", "--buffer", "128",
             "-o", str(tmp_path / "t.npz"), "--journal", str(journal)]
        )
        assert rc == 0
        recs = [json.loads(line) for line in journal.read_text().splitlines()]
        assert {r["event"] for r in recs} == {"stage", "trace-written"}
        written = next(r for r in recs if r["event"] == "trace-written")
        assert written["rho"] > 0 and written["n_sampled"] > 0
        assert len({r["run"] for r in recs}) == 1

    def test_report_journal_covers_pipeline_stages(self, trace_file, tmp_path):
        journal = tmp_path / "j.jsonl"
        rc = main(
            ["report", str(trace_file), "--workers", "2",
             "--journal", str(journal)]
        )
        assert rc == 0
        recs = [json.loads(line) for line in journal.read_text().splitlines()]
        events = {r["event"] for r in recs}
        assert {"stage", "shard-analyzed", "stage-summary"} <= events
        stages = {r.get("stage") for r in recs if r["event"] == "stage"}
        assert {"shard-plan", "merge"} <= stages

    def test_metrics_export_round_trips(self, trace_file, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        rc = main(
            ["report", str(trace_file), "--stats",
             "--journal", str(tmp_path / "j.jsonl"), "--metrics", str(metrics)]
        )
        assert rc == 0
        assert "stage timings" in capsys.readouterr().out
        data = json.loads(metrics.read_text())
        assert {"trace", "run", "metrics", "stages", "cache"} <= set(data)
        counters = data["metrics"]["counters"]
        assert counters["parallel.events"]["value"] > 0
        assert counters["parallel.plans"]["value"] > 0
        assert {s["stage"] for s in data["stages"]} >= {"plan", "compute", "merge"}
        # the registry snapshot reloads through the public constructor
        from repro.obs.metrics import MetricsRegistry

        back = MetricsRegistry.from_dict(data["metrics"])
        assert back.as_dict() == data["metrics"]

    def test_metrics_without_journal(self, trace_file, tmp_path):
        metrics = tmp_path / "m.json"
        assert main(["report", str(trace_file), "--metrics", str(metrics)]) == 0
        assert json.loads(metrics.read_text())["run"] is None


class TestValidateTrace:
    def test_clean_archive_rc_zero(self, trace_file, capsys):
        assert main(["validate-trace", str(trace_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_output(self, trace_file, capsys):
        assert main(["validate-trace", str(trace_file), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["has_health"] is True

    @pytest.mark.faults
    def test_truncated_archive_rc_one(self, trace_file, tmp_path, capsys):
        from obs import faults

        hurt = faults.truncate(trace_file, tmp_path / "hurt.npz")
        assert main(["validate-trace", str(hurt)]) == 1
        assert "TRUNCATION" in capsys.readouterr().out

    @pytest.mark.faults
    def test_report_survives_truncated_archive(self, tmp_path, capsys, rng):
        """Acceptance: report on a tail-truncated archive completes.

        Pure tail truncation is exactly what a reader racing a
        still-appending writer sees, so the report treats it as a
        *still-growing* archive (not corruption): the verified prefix is
        analyzed and the journal carries a ``still-growing`` warning.
        """
        import numpy as np

        from obs import faults
        from repro.trace.event import make_events
        from repro.trace.tracefile import HEALTH_CHUNK_EVENTS, TraceMeta, write_trace

        n = 3 * HEALTH_CHUNK_EVENTS
        ev = make_events(
            ip=rng.integers(0, 32, n),
            addr=rng.integers(0, 1 << 22, n),
            cls=rng.choice([0, 1, 2], n).astype(np.uint8),
        )
        sid = (np.arange(n) // 4096).astype(np.int32)
        big = tmp_path / "big.npz"
        write_trace(big, ev, TraceMeta(module="cli-fault", period=4096,
                                       buffer_capacity=256), sample_id=sid)
        hurt = faults.truncate(big, tmp_path / "hurt.npz", keep_fraction=0.7)

        journal = tmp_path / "j.jsonl"
        rc = main(["report", str(hurt), "--journal", str(journal)])
        captured = capsys.readouterr()
        assert rc == 0, "report must complete on a tail-truncated archive"
        assert "footprint access diagnostics" in captured.out
        assert "still growing" in captured.err
        assert "verified prefix" in captured.err
        recs = [json.loads(line) for line in journal.read_text().splitlines()]
        assert any(r.get("reason") == "still-growing" for r in recs)
        assert any(r["event"] == "trace-recovered" for r in recs)


class TestFailureModes:
    """Bad input exits with a clear message — never a traceback."""

    def test_duplicate_pass_name_exits(self, trace_file):
        with pytest.raises(SystemExit) as exc:
            main(["report", str(trace_file), "--passes", "diagnostics,diagnostics"])
        assert "requested twice" in str(exc.value)
        assert str(exc.value).startswith("memgaze report:")

    def test_report_missing_archive_exits(self):
        with pytest.raises(SystemExit) as exc:
            main(["report", "does-not-exist.npz"])
        assert "no such trace archive" in str(exc.value)

    def test_validate_trace_missing_archive_exits(self):
        with pytest.raises(SystemExit) as exc:
            main(["validate-trace", "does-not-exist.npz"])
        msg = str(exc.value)
        assert "no such trace archive" in msg
        assert "validate-trace" in msg

    def test_diff_missing_archive_exits(self, trace_file):
        with pytest.raises(SystemExit) as exc:
            main(["diff", str(trace_file), "gone.npz"])
        assert "no such trace archive" in str(exc.value)


class TestCacheCLI:
    def test_warm_report_hits_disk_cache(self, trace_file, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["report", str(trace_file), "--passes", "diagnostics,reuse",
                "--cache", "--cache-dir", str(cache)]
        assert main(argv + ["--metrics", str(tmp_path / "cold.json")]) == 0
        cold_out = capsys.readouterr().out
        assert main(argv + ["--metrics", str(tmp_path / "warm.json")]) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out, "cached results must render identically"
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert cold["disk_cache"]["hits"] == 0
        assert warm["disk_cache"]["hits"] > 0
        assert warm["disk_cache"]["misses"] == 0

    def test_cache_dir_alone_implies_cache(self, trace_file, tmp_path):
        cache = tmp_path / "cache"
        assert main(["report", str(trace_file), "--passes", "diagnostics",
                     "--cache-dir", str(cache)]) == 0
        assert list(cache.glob("*.mgc")), "--cache-dir alone must enable caching"

    def test_no_cache_wins(self, trace_file, tmp_path):
        cache = tmp_path / "cache"
        assert main(["report", str(trace_file), "--passes", "diagnostics",
                     "--no-cache", "--cache-dir", str(cache)]) == 0
        assert not cache.exists(), "--no-cache must override --cache-dir"

    def test_stats_prune_clear_flow(self, trace_file, tmp_path, capsys):
        cache = tmp_path / "cache"
        main(["report", str(trace_file), "--passes", "diagnostics,captures",
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "0"]) == 0
        assert "pruned 2 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "cleared 0 entries" in capsys.readouterr().out

    def test_stats_on_missing_dir_is_empty_not_error(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "never")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_prune_requires_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["cache", "prune", "--cache-dir", str(tmp_path)])
        msg = str(exc.value)
        assert "--max-bytes is required" in msg
        assert "memgaze cache clear" in msg  # the alternative is named

    def test_cache_root_must_be_directory(self, trace_file):
        with pytest.raises(SystemExit) as exc:
            main(["cache", "stats", "--cache-dir", str(trace_file)])
        assert "not a directory" in str(exc.value)

    def test_unknown_action_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "vacuum"])


class TestValidate:
    def test_validate_passes_on_microbench(self, capsys):
        rc = main(
            ["validate", "--workload", "ubench:str4", "--scale", "10", "--period", "4999"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "MAPE" in out
        assert "OK" in out
