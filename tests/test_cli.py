"""Tests for the memgaze command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ubench.npz"
    rc = main(
        [
            "trace",
            "--workload",
            "ubench:str4/irr",
            "--scale",
            "10",
            "--period",
            "4999",
            "--buffer",
            "512",
            "--deterministic",
            "-o",
            str(path),
        ]
    )
    assert rc == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_requires_workload_and_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "-o", "x.npz"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--workload", "ubench:irr"])

    def test_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "--workload", "x", "-o", "y", "--mode", "bogus"]
            )


class TestTrace:
    def test_writes_archive(self, trace_file):
        assert trace_file.exists()
        assert trace_file.stat().st_size > 0

    def test_unknown_family(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--workload", "nope:x", "-o", str(tmp_path / "t.npz")])

    def test_minivite_workload(self, tmp_path, capsys):
        path = tmp_path / "mv.npz"
        rc = main(
            ["trace", "--workload", "minivite:v3", "--scale", "7", "-o", str(path)]
        )
        assert rc == 0
        assert "miniVite v3" in capsys.readouterr().out


class TestInfo:
    def test_shows_metadata(self, trace_file, capsys):
        assert main(["info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "ubench str4/irr" in out
        assert "period (w+z):  4,999" in out
        assert "rho:" in out


class TestReport:
    def test_default_report_has_all_sections(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "footprint access diagnostics" in out
        assert "code windows" in out
        assert "hot memory regions" in out
        assert "working set" in out
        assert "sampling confidence" in out

    def test_selective_sections(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--functions"]) == 0
        out = capsys.readouterr().out
        assert "code windows" in out
        assert "hot memory regions" not in out

    def test_intervals(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--intervals", "4"]) == 0
        out = capsys.readouterr().out
        assert "locality over 4 access intervals" in out

    def test_confidence_flags(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--confidence"]) == 0
        out = capsys.readouterr().out
        assert "samples" in out

    def test_phases_section(self, trace_file, capsys):
        assert main(["report", str(trace_file), "--phases"]) == 0
        out = capsys.readouterr().out
        assert "execution phases" in out
        assert "phase 0" in out


class TestValidate:
    def test_validate_passes_on_microbench(self, capsys):
        rc = main(
            ["validate", "--workload", "ubench:str4", "--scale", "10", "--period", "4999"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "MAPE" in out
        assert "OK" in out
