"""Smoke tests: the fast example scripts run end to end.

The slower case-study examples (miniVite/GAP/darknet sweeps) are
exercised through the benchmark fixtures; here the quick ones run as real
subprocesses so a packaging or API regression that only bites script
users is caught.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "instrument_custom_kernel.py",
    "codesign_explore.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python"), script.name
        assert '"""' in text.partition("\n")[2][:10], script.name
