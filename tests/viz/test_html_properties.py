"""Property suite for the HTML report renderer.

Hypothesis generates adversarial report payloads — hostile function
names, NaN/inf metrics, empty and single-row sections, degenerate
trees — and asserts the invariants the renderer promises:

* every payload renders without raising;
* the output passes the self-containment validator (balanced tags, no
  external fetches, parseable embedded viewmodel);
* the embedded viewmodel round-trips: parsing it back yields exactly
  ``build_viewmodel(payload)`` after canonical serialization;
* every numeric SVG coordinate in the page is finite, even for
  zero-event / single-sample / empty-heatmap payloads;
* table cells carry their raw values losslessly in ``data-v``.
"""

from __future__ import annotations

import json
import math
import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.viz import build_viewmodel, render_html, viewmodel_json
from repro.viz.validate import validate_html

from test_golden_html import embedded_viewmodel

# names deliberately include markup, quotes, and non-ASCII
_NAMES = st.text(
    alphabet=st.sampled_from(list("abz</>&\"'`汉 =")), min_size=0, max_size=10
)
_ANY_FLOAT = st.floats(width=32)  # NaN and ±inf included on purpose
_FINITE = st.floats(
    allow_nan=False, allow_infinity=False, width=32, min_value=0.0
)
_MAYBE_FLOAT = st.none() | _ANY_FLOAT
_COUNT = st.integers(min_value=0, max_value=10**9)


@st.composite
def _function_diag(draw):
    return {
        "A_obs": draw(_COUNT),
        "A_est": draw(_MAYBE_FLOAT),
        "F_est": draw(_MAYBE_FLOAT),
        "dF": draw(_MAYBE_FLOAT),
        "F_str": draw(st.integers(0, 1000)),
        "F_irr": draw(st.integers(0, 1000)),
        "dF_str": draw(_ANY_FLOAT),
        "dF_irr": draw(_ANY_FLOAT),
    }


@st.composite
def _tree(draw, t0, t1, depth=0):
    node = {
        "level": depth,
        "t_start": t0,
        "t_end": t1,
        "exact": draw(st.booleans()),
        "function": draw(st.none() | _NAMES),
        "a_obs": draw(_COUNT),
        "f_est": draw(_MAYBE_FLOAT),
        "df": draw(_MAYBE_FLOAT),
        "children": [],
    }
    if depth < 2 and t1 - t0 > 1 and draw(st.booleans()):
        mid = (t0 + t1) // 2
        node["children"] = [
            draw(_tree(t0, mid, depth + 1)),
            draw(_tree(mid, t1, depth + 1)),
        ]
    return node


@st.composite
def _heatmap(draw):
    n_pages = draw(st.integers(0, 4))
    n_bins = draw(st.integers(0, 5))
    return {
        "name": draw(_NAMES),
        "base": draw(_COUNT),
        "size": draw(_COUNT),
        "counts": [
            [draw(_FINITE) for _ in range(n_bins)] for _ in range(n_pages)
        ],
        "reuse": [
            [draw(st.none() | _ANY_FLOAT) for _ in range(n_bins)]
            for _ in range(n_pages)
        ],
    }


@st.composite
def _viz_section(draw):
    t_end = draw(st.integers(1, 10**6))
    n_phases = draw(st.integers(0, 3))
    return {
        "schema": 1,
        "intervals": [
            {
                "interval": i,
                "F": draw(_MAYBE_FLOAT),
                "dF": draw(_MAYBE_FLOAT),
                "D": draw(_MAYBE_FLOAT),
                "A": draw(_MAYBE_FLOAT),
                "A_obs": draw(_COUNT),
            }
            for i in range(draw(st.integers(0, 4)))
        ],
        "phases": [
            {
                "index": i,
                "t_start": draw(st.integers(0, t_end)),
                "t_end": draw(st.integers(0, t_end)),
                "label": draw(
                    st.sampled_from(["regular", "irregular", "mixed", "??"])
                ),
                "strided_share": draw(st.none() | _ANY_FLOAT),
                "n_samples": draw(st.integers(0, 64)),
            }
            for i in range(n_phases)
        ],
        "tree": draw(st.none() | _tree(0, t_end)),
        "regions": [
            {"name": draw(_NAMES), "base": draw(_COUNT), "size": draw(_COUNT)}
            for _ in range(draw(st.integers(0, 2)))
        ],
        "heatmaps": [draw(_heatmap()) for _ in range(draw(st.integers(0, 2)))],
    }


@st.composite
def payloads(draw):
    passes = {}
    if draw(st.booleans()):
        passes["diagnostics"] = draw(_function_diag())
        passes["diagnostics"]["A_const_pct"] = draw(_ANY_FLOAT)
    if draw(st.booleans()):
        n_bins = draw(st.integers(0, 8))
        passes["reuse"] = {
            "counts": [draw(_COUNT) for _ in range(n_bins)],
            "n_cold": draw(_COUNT),
            "n_reuse": draw(_COUNT),
            "d_sum": draw(_COUNT),
            "d_max": draw(_COUNT),
            "scope": "sample",
        }
    if draw(st.booleans()):
        passes["hotspot"] = [
            {
                "function": draw(_NAMES),
                "share": draw(_MAYBE_FLOAT),
                "n_accesses": draw(_COUNT),
            }
            for _ in range(draw(st.integers(0, 3)))
        ]
    if draw(st.booleans()):
        passes["cache_sweep"] = [
            {
                "size_bytes": draw(_COUNT),
                "line_bytes": draw(st.sampled_from([32, 64, 128])),
                "ways": draw(st.integers(1, 16)),
                "n_sets": draw(_COUNT),
                "hit_ratio": draw(_ANY_FLOAT),
                "predicted_hit_ratio": draw(_MAYBE_FLOAT),
                "n_accesses": draw(_COUNT),
            }
            for _ in range(draw(st.integers(0, 3)))
        ]
    functions = {
        f"{draw(_NAMES)}#{i}": draw(_function_diag())
        for i in range(draw(st.integers(0, 3)))
    }
    payload = {
        "schema": 1,
        "module": draw(_NAMES),
        "n_events": draw(_COUNT),
        "n_samples": draw(_COUNT),
        "n_loads_total": draw(_COUNT),
        "rho": draw(_ANY_FLOAT),
        "functions": functions,
        "passes": passes,
    }
    if draw(st.booleans()):
        payload["viz"] = draw(_viz_section())
    if draw(st.booleans()):
        payload["degraded"] = {
            "growing": draw(st.booleans()),
            "n_events": draw(_COUNT),
            "findings": [
                {"kind": draw(_NAMES), "detail": draw(_NAMES)}
                for _ in range(draw(st.integers(0, 2)))
            ],
        }
    return payload


#: hand-picked degenerate payloads the issue calls out explicitly
EDGE_PAYLOADS = [
    pytest.param(
        {"schema": 1, "module": "zero", "n_events": 0, "n_samples": 0,
         "n_loads_total": 0, "rho": 1.0, "functions": {}, "passes": {}},
        id="zero-events",
    ),
    pytest.param(
        {
            "schema": 1, "module": "one", "n_events": 1, "n_samples": 1,
            "n_loads_total": 1, "rho": 1.0,
            "functions": {"f": {"A_obs": 1}},
            "passes": {"reuse": {"counts": [1], "n_cold": 1, "n_reuse": 0,
                                 "d_sum": 0, "d_max": 0}},
            "viz": {
                "schema": 1,
                "intervals": [{"interval": 0, "F": 1.0, "dF": 0.0, "D": 0.0,
                               "A": 1.0, "A_obs": 1}],
                "phases": [{"index": 0, "t_start": 0, "t_end": 0,
                            "label": "regular", "strided_share": 1.0,
                            "n_samples": 1}],
                "tree": {"level": 0, "t_start": 5, "t_end": 5, "exact": True,
                         "function": None, "a_obs": 1, "f_est": 1.0,
                         "df": None, "children": []},
                "regions": [],
                "heatmaps": [],
            },
        },
        id="single-sample",
    ),
    pytest.param(
        {
            "schema": 1, "module": "heat", "n_events": 4, "n_samples": 1,
            "n_loads_total": 4, "rho": 1.0, "functions": {}, "passes": {},
            "viz": {
                "schema": 1, "intervals": [], "phases": [], "tree": None,
                "regions": [],
                "heatmaps": [
                    {"name": "empty", "base": 0, "size": 0,
                     "counts": [], "reuse": []},
                    {"name": "blank rows", "base": 64, "size": 256,
                     "counts": [[0.0, 0.0], [0.0, 0.0]],
                     "reuse": [[None, None], [None, None]]},
                ],
            },
        },
        id="empty-heatmap",
    ),
]

_SVG_COORD_RE = re.compile(
    r'\b(?:x|y|x1|x2|y1|y2|width|height)="([^"%]*)"'
)


def _assert_page_invariants(payload):
    page = render_html(payload)
    problems = validate_html(page)
    assert problems == [], f"validator rejected the page: {problems}"

    # embedded viewmodel round-trips the payload's viewmodel exactly
    vm = json.loads(embedded_viewmodel(page))
    assert vm == json.loads(viewmodel_json(build_viewmodel(payload)))

    # every numeric coordinate in the page is finite
    for m in _SVG_COORD_RE.finditer(page):
        v = float(m.group(1))
        assert math.isfinite(v), f"non-finite SVG coordinate {m.group(0)}"
    return page


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(payload=payloads())
def test_arbitrary_payload_renders_valid_self_contained_html(payload):
    _assert_page_invariants(payload)


@pytest.mark.parametrize("payload", EDGE_PAYLOADS)
def test_degenerate_payloads_render(payload):
    _assert_page_invariants(payload)


def test_numeric_cells_round_trip_exactly():
    """``data-v`` carries the raw value: parsing it back is lossless."""
    awkward = [0.1, 1.0 / 3.0, 12345678.90123456789, 1e-17, 2.0**53 - 1]
    payload = {
        "schema": 1, "module": "roundtrip", "n_events": 10, "n_samples": 2,
        "n_loads_total": 10, "rho": 0.25,
        "functions": {
            f"f{i}": {"A_obs": i, "A_est": v, "F_est": v, "dF": v}
            for i, v in enumerate(awkward)
        },
        "passes": {},
    }
    page = render_html(payload)
    cells = {
        float(v)
        for v in re.findall(r'<td class="num" data-v="([^"]+)"', page)
    }
    for v in awkward:
        assert v in cells, f"{v!r} did not survive the data-v round trip"


def test_hostile_module_name_is_escaped():
    payload = {
        "schema": 1, "module": '</script><script>alert(1)</script>',
        "n_events": 0, "n_samples": 0, "n_loads_total": 0, "rho": 1.0,
        "functions": {}, "passes": {},
    }
    page = _assert_page_invariants(payload)
    assert "<script>alert(1)</script>" not in page
