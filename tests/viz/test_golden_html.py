"""Golden-pixel harness for the HTML report.

``memgaze report --html`` embeds its viewmodel — the pure content layer
behind the page — as canonical JSON in a ``<script type="application/
json">`` block. This suite freezes those bytes for the same canonical
archives the JSON golden suite pins (``tests/integration/golden/``), so
any drift in the visual report's *content* is a reviewable fixture diff,
while styling-only edits (CSS, inline JS) stay free of golden churn.

It also proves the rendering invariants the dashboard relies on: the
whole page renders byte-identically with a cold cache, a warm cache, and
no cache at all, and the emitted file passes the self-containment
validator (:mod:`repro.viz.validate`).

Re-freeze intentional content changes with::

    pytest tests/viz/test_golden_html.py --update-golden

and review the diff like any other code change. The archives themselves
are owned by ``tests/integration/test_golden_reports.py`` (literal
seeds, decoupled from ``MEMGAZE_TEST_SEED``).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.viz import VIEWMODEL_SCHEMA
from repro.viz.validate import validate_html

GOLDEN = Path(__file__).resolve().parents[1] / "integration" / "golden"

CASES = ["strided-mix", "irregular", "sidless"]

_VM_RE = re.compile(
    r'<script type="application/json" id="memgaze-viewmodel">\n(.*?)\n</script>',
    re.DOTALL,
)


def embedded_viewmodel(page: str) -> str:
    """The canonical viewmodel JSON embedded in a rendered page."""
    m = _VM_RE.search(page)
    assert m, "page has no embedded viewmodel block"
    return m.group(1).replace("<\\/", "</")


def _archive(case: str) -> Path:
    archive = GOLDEN / f"{case}.npz"
    if not archive.exists():
        pytest.fail(
            f"golden archive {archive} is missing — regenerate with "
            "'pytest tests/integration/test_golden_reports.py "
            "--update-golden' and commit it"
        )
    return archive


def _render(archive: Path, out: Path, *extra: str) -> str:
    rc = cli_main(["report", str(archive), "--html", str(out), *extra])
    assert rc == 0
    return out.read_text(encoding="utf-8")


@pytest.mark.parametrize("case", CASES)
def test_golden_viewmodel(case, tmp_path, request):
    update = request.config.getoption("--update-golden")
    expected_path = GOLDEN / f"{case}.viewmodel.json"

    page = _render(_archive(case), tmp_path / "report.html")
    vm_text = embedded_viewmodel(page)
    assert json.loads(vm_text)["schema"] == VIEWMODEL_SCHEMA

    if update:
        expected_path.write_text(vm_text, encoding="utf-8")
        return
    if not expected_path.exists():
        pytest.fail(
            f"golden expectation {expected_path} is missing — freeze it "
            "with --update-golden and commit it"
        )
    assert vm_text == expected_path.read_text(encoding="utf-8"), (
        f"viewmodel drifted from {expected_path.name}; if the change is "
        "intentional, re-freeze with --update-golden and review the diff"
    )


@pytest.mark.parametrize("case", CASES)
def test_page_is_self_contained(case, tmp_path):
    page = _render(_archive(case), tmp_path / "report.html")
    assert validate_html(page) == []


def test_cold_warm_and_no_cache_render_identical_bytes(tmp_path):
    """The analysis cache must never change a single byte of the page.

    Three renders of the same archive — no cache, cold cache (populating
    ``--cache-dir``), warm cache (hitting it) — must agree exactly. This
    is the offline half of the live-vs-offline identity the dashboard
    test closes (``tests/serve/test_dashboard.py``).
    """
    archive = _archive("strided-mix")
    cache = tmp_path / "cache"
    plain = _render(archive, tmp_path / "plain.html")
    cold = _render(archive, tmp_path / "cold.html", "--cache-dir", str(cache))
    warm = _render(archive, tmp_path / "warm.html", "--cache-dir", str(cache))
    assert cold == warm, "warm-cache render drifted from the cold one"
    assert plain == cold, "cached render drifted from the uncached one"


def test_render_is_deterministic(tmp_path):
    archive = _archive("irregular")
    first = _render(archive, tmp_path / "a.html")
    second = _render(archive, tmp_path / "b.html")
    assert first == second
