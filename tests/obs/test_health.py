"""Tests for trace-archive health validation and partial recovery.

The fault-injection cases (marked ``faults``) damage real archives with
the harness in ``faults.py`` and assert the health layer detects and
classifies every damage class; CI runs them as a dedicated
``pytest -m faults`` job.
"""

import numpy as np
import pytest

import faults
from repro._util.rng import derive_rng
from repro.obs.journal import RunJournal, read_journal
from repro.trace.event import make_events
from repro.trace.health import (
    KIND_BIT_FLIP,
    KIND_SCHEMA,
    KIND_TRUNCATION,
    recover_read,
    validate,
)
from repro.trace.tracefile import (
    HEALTH_CHUNK_EVENTS,
    TraceFormatError,
    TraceMeta,
    write_trace,
)

N_EVENTS = 3 * HEALTH_CHUNK_EVENTS + 1234  # spans four checksum chunks


@pytest.fixture(scope="module")
def archive(tmp_path_factory, test_seed):
    """A healthy multi-chunk trace archive (events + sample_id)."""
    rng = derive_rng(test_seed, "health-archive")
    ev = make_events(
        ip=rng.integers(0, 64, N_EVENTS),
        addr=rng.integers(0, 1 << 24, N_EVENTS),
        cls=rng.choice([0, 1, 2], N_EVENTS).astype(np.uint8),
    )
    sid = (np.arange(N_EVENTS) // 5000).astype(np.int32)
    path = tmp_path_factory.mktemp("health") / "clean.npz"
    meta = TraceMeta(module="health-fixture", period=5000, buffer_capacity=1024)
    write_trace(path, ev, meta, sample_id=sid)
    return path, ev, sid


def kinds(report):
    return {f.kind for f in report.findings}


class TestValidateClean:
    def test_clean_archive_is_ok(self, archive):
        path, ev, _ = archive
        report = validate(path)
        assert report.ok
        assert report.has_health
        assert report.n_events_ok == len(ev)
        assert "OK" in report.render()

    def test_as_dict_is_json_shaped(self, archive):
        import json

        path, _, _ = archive
        d = validate(path).as_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["ok"] is True and d["findings"] == []

    def test_legacy_archive_without_health_member(self, archive, tmp_path):
        path, ev, _ = archive
        legacy = faults.schema_corrupt(path, tmp_path / "legacy.npz",
                                       drop_member="health.npy")
        report = validate(legacy)
        assert report.ok
        assert not report.has_health
        assert report.n_events_ok == len(ev)

    def test_missing_file_is_schema_finding(self, tmp_path):
        report = validate(tmp_path / "nope.npz")
        assert kinds(report) == {KIND_SCHEMA}

    def test_non_zip_is_schema_finding(self, tmp_path):
        bad = tmp_path / "junk.npz"
        bad.write_bytes(b"this is not a zip archive at all" * 8)
        report = validate(bad)
        assert kinds(report) == {KIND_SCHEMA}


@pytest.mark.faults
class TestTruncation:
    def test_detected_and_prefix_recovered(self, archive, tmp_path):
        path, ev, _ = archive
        hurt = faults.truncate(path, tmp_path / "trunc.npz", keep_fraction=0.7)
        report = validate(hurt)
        assert not report.ok
        assert KIND_TRUNCATION in kinds(report)
        assert 0 < report.n_events_ok < len(ev)
        assert report.n_events_ok % HEALTH_CHUNK_EVENTS == 0  # whole chunks only

    def test_recover_read_returns_verified_prefix(self, archive, tmp_path):
        path, ev, _ = archive
        hurt = faults.truncate(path, tmp_path / "trunc.npz", keep_fraction=0.7)
        events, meta, _, findings = recover_read(hurt)
        assert meta.module == "health-fixture"
        assert findings
        assert np.array_equal(events, ev[: len(events)])

    def test_recovery_is_journaled_not_raised(self, archive, tmp_path):
        path, _, _ = archive
        hurt = faults.truncate(path, tmp_path / "trunc.npz", keep_fraction=0.7)
        with RunJournal(tmp_path / "j.jsonl") as journal:
            _, _, _, findings = recover_read(hurt, journal=journal)
        recs = list(read_journal(tmp_path / "j.jsonl"))
        warnings = [r for r in recs if r["event"] == "warning"]
        assert len(warnings) == len(findings)
        assert recs[-1]["event"] == "trace-recovered"

    def test_severe_truncation_keeps_metadata(self, archive, tmp_path):
        """meta/health are written first, so even a brutal cut identifies."""
        path, _, _ = archive
        hurt = faults.truncate(path, tmp_path / "stub.npz", keep_fraction=0.01)
        _, meta, _, _ = recover_read(hurt)
        assert meta.module == "health-fixture"


@pytest.mark.faults
class TestBitFlip:
    def test_detected_and_classified(self, archive, tmp_path):
        path, ev, _ = archive
        hurt = faults.bit_flip(path, tmp_path / "flip.npz", offset_fraction=0.5)
        report = validate(hurt)
        assert not report.ok
        assert KIND_BIT_FLIP in kinds(report)
        assert report.n_events_ok < len(ev)

    def test_early_flip_recovers_nothing(self, archive, tmp_path):
        path, _, _ = archive
        hurt = faults.bit_flip(path, tmp_path / "flip0.npz", offset_fraction=0.0)
        assert validate(hurt).n_events_ok == 0

    def test_late_flip_slices_sample_id_to_prefix(self, archive, tmp_path):
        path, ev, sid = archive
        hurt = faults.bit_flip(path, tmp_path / "flipl.npz", offset_fraction=0.9)
        events, _, sample_id, _ = recover_read(hurt)
        assert 0 < len(events) < len(ev)
        assert sample_id is not None
        assert len(sample_id) == len(events)
        assert np.array_equal(sample_id, sid[: len(events)])


@pytest.mark.faults
class TestSchema:
    def test_missing_meta_detected(self, archive, tmp_path):
        path, _, _ = archive
        hurt = faults.schema_corrupt(path, tmp_path / "nometa.npz",
                                     drop_member="meta.npy")
        report = validate(hurt)
        assert KIND_SCHEMA in kinds(report)

    def test_missing_meta_is_unrecoverable(self, archive, tmp_path):
        path, _, _ = archive
        hurt = faults.schema_corrupt(path, tmp_path / "nometa.npz",
                                     drop_member="meta.npy")
        with pytest.raises(TraceFormatError) as err:
            recover_read(hurt)
        assert err.value.key == "meta"

    def test_bad_version_detected(self, archive, tmp_path):
        path, _, _ = archive
        hurt = faults.schema_corrupt(path, tmp_path / "badver.npz",
                                     bad_version=True)
        report = validate(hurt)
        assert KIND_SCHEMA in kinds(report)

    def test_missing_events_detected(self, archive, tmp_path):
        path, _, _ = archive
        hurt = faults.schema_corrupt(path, tmp_path / "noev.npz",
                                     drop_member="events.npy")
        report = validate(hurt)
        assert KIND_SCHEMA in kinds(report)
        assert report.n_events_ok == 0


class TestRecoverReadHealthy:
    def test_fast_path_no_findings(self, archive):
        path, ev, sid = archive
        events, meta, sample_id, findings = recover_read(path)
        assert findings == []
        assert np.array_equal(events, ev)
        assert np.array_equal(sample_id, sid)
        assert meta.module == "health-fixture"
