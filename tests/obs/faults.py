"""Fault-injection harness for trace archives.

Each injector takes a healthy ``.npz`` archive and produces a damaged
copy exercising one of the three damage classes the health layer
(:mod:`repro.trace.health`) must detect:

* :func:`truncate` — cut the file short, destroying the zip central
  directory and part of the bulk members (a killed transfer / full
  disk);
* :func:`bit_flip` — XOR bits inside a member's compressed payload
  while keeping the container structurally intact (storage corruption);
* :func:`schema_corrupt` — rewrite the archive with a member missing or
  metadata a current reader cannot accept (a foreign or broken writer).

These are plain functions (no pytest dependency) so the health tests,
the CLI tests, and the ``-m faults`` CI job all share one source of
damage. See ``docs/observability.md`` for the how-to.
"""

from __future__ import annotations

import io
import shutil
import zipfile
from pathlib import Path

__all__ = ["truncate", "bit_flip", "schema_corrupt", "flip_bytes"]


def flip_bytes(path, offset_fraction: float = 0.5, n_bytes: int = 4) -> Path:
    """XOR-flip bytes of an arbitrary file **in place** (not zip-aware).

    The raw counterpart of :func:`bit_flip` for flat files such as
    analysis-cache entries (``*.mgc``): the flip lands at
    ``offset_fraction`` of the file's length, simulating storage
    corruption the cache layer must absorb as a journaled miss.
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        raise ValueError(f"cannot flip bytes of empty file {path}")
    at = min(int(len(blob) * offset_fraction), len(blob) - 1)
    for i in range(min(n_bytes, len(blob) - at)):
        blob[at + i] ^= 0xFF
    path.write_bytes(bytes(blob))
    return path


def truncate(src, dst, keep_fraction: float = 0.7) -> Path:
    """Copy ``src`` to ``dst`` cut down to ``keep_fraction`` of its bytes.

    Truncation removes the zip central directory (it lives at the end of
    the file) and usually the tail of the ``events`` member.
    """
    if not 0.0 < keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1), got {keep_fraction}")
    src, dst = Path(src), Path(dst)
    shutil.copyfile(src, dst)
    with open(dst, "r+b") as fh:
        fh.truncate(int(src.stat().st_size * keep_fraction))
    return dst


def bit_flip(src, dst, member: str = "events.npy", offset_fraction: float = 0.5,
             n_bytes: int = 4) -> Path:
    """Copy ``src`` to ``dst`` with bytes XOR-flipped inside ``member``.

    The flip lands in the member's *compressed* payload at
    ``offset_fraction`` of its length, so the file stays structurally
    complete (directory intact, sizes unchanged) but the member fails
    zip-level and/or chunk-checksum verification.
    """
    src, dst = Path(src), Path(dst)
    blob = bytearray(src.read_bytes())
    with zipfile.ZipFile(io.BytesIO(bytes(blob))) as zf:
        info = zf.getinfo(member)
        header = info.header_offset
        # local header: fixed 30 bytes + name + extra field
        nlen = int.from_bytes(blob[header + 26 : header + 28], "little")
        elen = int.from_bytes(blob[header + 28 : header + 30], "little")
        data_start = header + 30 + nlen + elen
        size = info.compress_size or 64
    at = data_start + int(size * offset_fraction)
    for i in range(n_bytes):
        blob[at + i] ^= 0xFF
    dst.write_bytes(bytes(blob))
    return dst


def schema_corrupt(src, dst, *, drop_member: str | None = "meta.npy",
                   bad_version: bool = False) -> Path:
    """Copy ``src`` to ``dst`` as a structurally valid but unreadable archive.

    Either omits ``drop_member`` entirely, or (``bad_version=True``)
    rewrites the metadata member claiming a format version no current
    reader accepts. The result is a well-formed zip — the damage is
    semantic, not structural.
    """
    src, dst = Path(src), Path(dst)
    with zipfile.ZipFile(src) as zin:
        names = zin.namelist()
        payloads = {n: zin.read(n) for n in names}
    if bad_version:
        meta = payloads.get("meta.npy")
        if meta is None:
            raise ValueError("archive has no meta.npy to version-corrupt")
        payloads["meta.npy"] = meta.replace(b'"version": 1', b'"version": 99')
    elif drop_member is not None:
        payloads.pop(drop_member, None)
    with zipfile.ZipFile(dst, "w", zipfile.ZIP_DEFLATED) as zout:
        for name, data in payloads.items():
            zout.writestr(name, data)
    return dst
