"""Tests for the metrics registry and its exact merge semantics."""

import json
import random

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(9)
        assert c.value == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_is_addition(self):
        a, b = Counter(3), Counter(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_max_mode_keeps_peak(self):
        g = Gauge()
        for v in (2, 9, 4):
            g.set(v)
        assert g.value == 9

    def test_min_mode_keeps_floor(self):
        g = Gauge(mode="min")
        for v in (5, 1, 3):
            g.set(v)
        assert g.value == 1

    def test_none_is_merge_identity(self):
        a, b = Gauge(), Gauge()
        b.set(7)
        a.merge(b)
        assert a.value == 7
        a.merge(Gauge())  # unset gauge changes nothing
        assert a.value == 7

    def test_mode_mismatch_raises(self):
        with pytest.raises(ValueError):
            Gauge(mode="max").merge(Gauge(mode="min"))

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Gauge(mode="avg")


class TestHistogram:
    def test_power_of_two_binning(self):
        h = Histogram()
        h.observe_many([0, 1, 2, 3, 4])
        # 0 -> bin 0; 1 -> bin 1; 2,3 -> bin 2; 4 -> bin 3
        assert h.counts[:4] == [1, 1, 2, 1]
        assert h.n == 5 and h.total == 10
        assert (h.vmin, h.vmax) == (0, 4)
        assert h.mean == 2.0

    def test_overflow_lands_in_top_bin(self):
        h = Histogram(max_exp=4)
        h.observe(10_000)
        assert h.counts[4] == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1)

    def test_geometry_mismatch_raises(self):
        with pytest.raises(ValueError):
            Histogram(max_exp=8).merge(Histogram(max_exp=9))

    def test_merge_equals_single_stream(self):
        rng = random.Random(7)
        values = [rng.randrange(0, 1 << 20) for _ in range(500)]
        whole = Histogram()
        whole.observe_many(values)
        parts = [Histogram() for _ in range(4)]
        for i, v in enumerate(values):
            parts[i % 4].observe(v)
        merged = Histogram()
        rng.shuffle(parts)  # merge must be order-free
        for p in parts:
            merged.merge(p)
        assert merged.as_dict() == whole.as_dict()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")

    def test_merge_mirrors_partial_merge_contract(self):
        """Per-worker registries fold into one exactly, in any order."""
        workers = []
        for w in range(3):
            m = MetricsRegistry()
            m.counter("parallel.events").inc(100 * (w + 1))
            m.gauge("parallel.peak_in_flight").set(w + 1)
            m.histogram("parallel.shard_events").observe(1 << w)
            workers.append(m)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for m in workers:
            forward.merge(m)
        for m in reversed(workers):
            backward.merge(m)
        assert forward.as_dict() == backward.as_dict()
        assert forward.counter("parallel.events").value == 600
        assert forward.gauge("parallel.peak_in_flight").value == 3
        assert forward.histogram("parallel.shard_events").n == 3

    def test_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_json_roundtrip(self):
        m = MetricsRegistry()
        m.counter("c").inc(5)
        m.gauge("g", mode="min").set(2.5)
        m.histogram("h").observe_many([1, 2, 3])
        back = MetricsRegistry.from_json(m.to_json())
        assert back.as_dict() == m.as_dict()
        assert json.loads(m.to_json()) == m.as_dict()

    def test_empty_registry_roundtrip(self):
        assert MetricsRegistry.from_json(MetricsRegistry().to_json()).as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
