"""Tests for the structured JSONL run journal."""

import json
import multiprocessing as mp
import pickle

import pytest

from repro._util.timers import StageTimers
from repro.obs.journal import RunJournal, read_journal
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def journal(tmp_path):
    with RunJournal(tmp_path / "run.jsonl") as j:
        yield j


class TestEmit:
    def test_one_line_per_emit(self, journal):
        journal.emit("stage", stage="trace", seconds=0.5)
        journal.emit("stage", stage="analyze", seconds=1.5)
        lines = list(read_journal(journal.path))
        assert [r["stage"] for r in lines] == ["trace", "analyze"]

    def test_schema_fields_present(self, journal):
        journal.emit("custom", foo=1)
        (rec,) = read_journal(journal.path)
        assert {"ts", "run", "pid", "event", "foo"} <= set(rec)
        assert rec["event"] == "custom" and rec["run"] == journal.run_id

    def test_lines_are_valid_json(self, journal):
        journal.emit("stage", stage="merge", tasks=["diagnostics", "captures"])
        raw = journal.path.read_text().splitlines()
        assert all(isinstance(json.loads(line), dict) for line in raw)

    def test_non_json_values_stringified(self, journal):
        journal.emit("stage", path=journal.path)  # Path is not JSON-native
        (rec,) = read_journal(journal.path)
        assert rec["path"] == str(journal.path)

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as j1:
            j1.emit("a")
        with RunJournal(path) as j2:
            j2.emit("b")
        assert [r["event"] for r in read_journal(path)] == ["a", "b"]


class TestStage:
    def test_records_elapsed_seconds(self, journal):
        with journal.stage("shard-plan", n_shards=4):
            pass
        (rec,) = read_journal(journal.path)
        assert rec["stage"] == "shard-plan"
        assert rec["n_shards"] == 4
        assert rec["seconds"] >= 0.0

    def test_error_recorded_and_propagated(self, journal):
        with pytest.raises(RuntimeError):
            with journal.stage("analyze"):
                raise RuntimeError("boom")
        (rec,) = read_journal(journal.path)
        assert rec["error"] == "RuntimeError: boom"


class TestBridges:
    def test_warning(self, journal):
        journal.warning("dropped tail", path="t.npz", kind="truncation")
        (rec,) = read_journal(journal.path)
        assert rec["event"] == "warning" and rec["message"] == "dropped tail"

    def test_record_timers(self, journal):
        timers = StageTimers()
        timers.add("compute", 0.25, items=100)
        timers.add("merge", 0.05, items=4)
        journal.record_timers(timers)
        recs = list(read_journal(journal.path))
        assert {r["stage"] for r in recs} == {"compute", "merge"}
        assert all(r["event"] == "stage-summary" for r in recs)

    def test_record_metrics(self, journal):
        m = MetricsRegistry()
        m.counter("trace.chunks_read").inc(3)
        journal.record_metrics(m)
        (rec,) = read_journal(journal.path)
        assert rec["metrics"]["counters"]["trace.chunks_read"]["value"] == 3


def _worker_emit(journal, n):
    for i in range(n):
        journal.emit("stage", stage="shard-analyzed", i=i)


class TestProcessSafety:
    def test_pickles_path_and_run_id_only(self, journal):
        journal.emit("warm")  # open the descriptor so there is state to drop
        clone = pickle.loads(pickle.dumps(journal))
        assert clone.path == journal.path
        assert clone.run_id == journal.run_id
        assert clone._fd is None

    def test_concurrent_writers_never_interleave(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        n_procs, n_lines = 4, 50
        ctx = mp.get_context("spawn")
        procs = [
            ctx.Process(target=_worker_emit, args=(journal, n_lines))
            for _ in range(n_procs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        recs = list(read_journal(journal.path))  # raises on any torn line
        assert len(recs) == n_procs * n_lines
        assert {r["run"] for r in recs} == {journal.run_id}
        assert len({r["pid"] for r in recs}) == n_procs
