"""Tests for source-code attribution."""

from repro.instrument.attribution import SourceMap
from repro.instrument.instrumenter import instrument_module
from repro.isa.builder import ProgramBuilder
from repro.trace.event import make_events


class TestLookup:
    def test_lookup_hit_and_miss(self):
        sm = SourceMap({0x10: ("f", "f.c", 7)})
        assert sm.lookup(0x10) == ("f", "f.c", 7)
        assert sm.lookup(0x99) is None
        assert sm.function_of(0x10) == "f"
        assert sm.function_of(0x99) == "?"

    def test_len(self):
        assert len(SourceMap({1: ("a", "b", 1), 2: ("a", "b", 2)})) == 2


class TestFromModule:
    def test_module_lines(self):
        b = ProgramBuilder("m", source_file="src.c")
        with b.proc("f") as p:
            p.mov("x", 1)
            p.ret(0)
        m = b.build()
        sm = SourceMap.from_module(m)
        fn, file, line = sm.lookup(m.procedures["f"].instructions()[0].addr)
        assert (fn, file, line) == ("f", "src.c", 1)

    def test_from_annotations_covers_new_layout(self):
        """SS:III-D: the instrumented stream needs its own mapping."""
        b = ProgramBuilder("m")
        with b.proc("f", params=("arr",)) as p:
            p.load("v", base="arr")
            p.ret(0)
        inst = instrument_module(b.build())
        sm = SourceMap.from_annotations(inst.annotations)
        for load_ip in inst.annotations.loads:
            assert sm.lookup(load_ip) is not None


class TestAggregation:
    def test_attribute_events(self):
        sm = SourceMap({1: ("f", "f.c", 1), 2: ("g", "g.c", 2)})
        ev = make_events(ip=[1, 1, 2, 9], addr=[0, 0, 0, 0])
        counts = sm.attribute_events(ev)
        assert counts[("f", "f.c", 1)] == 2
        assert counts[("g", "g.c", 2)] == 1
        assert counts[("?", "?", 0)] == 1

    def test_attribute_functions(self):
        sm = SourceMap({1: ("f", "f.c", 1), 2: ("f", "f.c", 9)})
        ev = make_events(ip=[1, 2, 2], addr=[0, 0, 0])
        counts = sm.attribute_functions(ev)
        assert counts["f"] == 3
