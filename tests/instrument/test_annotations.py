"""Tests for the auxiliary annotation file."""

from repro.instrument.annotations import (
    AnnotationFile,
    LoadAnnotation,
    PtwAnnotation,
)
from repro.trace.event import LoadClass


def _sample() -> AnnotationFile:
    ann = AnnotationFile(module="m")
    ann.loads[0x100] = LoadAnnotation(
        load_ip=0x100,
        cls=LoadClass.STRIDED,
        stride=8,
        n_const=2,
        fn=0,
        proc="f",
        line=3,
    )
    ann.ptwrites[0xFC] = PtwAnnotation(
        ptw_ip=0xFC, load_ip=0x100, starts_record=True, multiplier=8, offset=16
    )
    ann.source_map[0x100] = ("f", "f.c", 3)
    ann.n_static_loads = 4
    ann.n_static_instrumented = 2
    ann.n_static_suppressed = 2
    return ann


class TestRoundTrip:
    def test_json_roundtrip(self):
        ann = _sample()
        back = AnnotationFile.from_json(ann.to_json())
        assert back.module == "m"
        assert back.loads == ann.loads
        assert back.ptwrites == ann.ptwrites
        assert back.source_map == ann.source_map
        assert back.n_static_loads == 4

    def test_load_class_survives_as_enum(self):
        back = AnnotationFile.from_json(_sample().to_json())
        assert back.loads[0x100].cls is LoadClass.STRIDED

    def test_none_stride_roundtrips(self):
        ann = _sample()
        ann.loads[0x200] = LoadAnnotation(
            load_ip=0x200, cls=LoadClass.IRREGULAR, stride=None, n_const=0, fn=1, proc="g", line=1
        )
        back = AnnotationFile.from_json(ann.to_json())
        assert back.loads[0x200].stride is None

    def test_file_roundtrip(self, tmp_path):
        ann = _sample()
        ann.save(tmp_path / "ann.json")
        back = AnnotationFile.load(tmp_path / "ann.json")
        assert back.loads == ann.loads


class TestStats:
    def test_instrumented_fraction(self):
        assert _sample().instrumented_fraction == 0.5

    def test_empty_fraction(self):
        assert AnnotationFile(module="m").instrumented_fraction == 0.0
