"""Tests for ptwrite insertion and proxy selection (Fig. 2 behaviour)."""

import pytest

from repro.instrument.instrumenter import instrument_module
from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter
from repro.isa.program import Opcode
from repro.trace.event import LoadClass


def _module(body, params=("arr", "ptr")):
    b = ProgramBuilder("m")
    with b.proc("f", params=params) as p:
        body(p)
        p.ret(0)
    return b.build()


class TestPtwritePlacement:
    def test_ptwrite_precedes_load(self):
        m = _module(lambda p: p.load("v", base="arr"))
        inst = instrument_module(m)
        instrs = inst.module.procedures["f"].instructions()
        ops = [i.op for i in instrs]
        assert ops.index(Opcode.PTWRITE) == ops.index(Opcode.LOAD) - 1

    def test_two_source_registers_two_ptwrites(self):
        def body(p):
            p.mov("v", 0)
            with p.loop("i", 0, 4):
                p.load("v", base="arr", index="v", scale=8)
        m = _module(body)
        inst = instrument_module(m)
        ptws = [
            i
            for i in inst.module.procedures["f"].instructions()
            if i.op is Opcode.PTWRITE
        ]
        assert len(ptws) == 2
        roles = [inst.annotations.ptwrites[i.addr] for i in ptws]
        assert [r.starts_record for r in roles] == [True, False]
        assert roles[0].multiplier == 1  # base
        assert roles[1].multiplier == 8  # index scale

    def test_index_only_load_gets_scale_multiplier(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load("v", index="i", scale=4, offset=0x1000)
        m = _module(body)
        inst = instrument_module(m)
        ann = next(iter(inst.annotations.ptwrites.values()))
        assert ann.multiplier == 4
        assert ann.offset == 0x1000
        assert ann.starts_record


class TestProxySelection:
    def test_constants_suppressed_with_nonconst_proxy(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load_local("c1", offset=8)
                p.load("v", base="arr", index="i", scale=8)
                p.load_local("c2", offset=16)
        m = _module(body)
        inst = instrument_module(m)
        ann = inst.annotations
        assert ann.n_static_loads == 3
        assert ann.n_static_instrumented == 1
        assert ann.n_static_suppressed == 2
        proxy = next(a for a in ann.loads.values() if a.cls is not LoadClass.CONSTANT)
        assert proxy.n_const == 2

    def test_all_constant_block_instruments_first(self):
        def body(p):
            p.load_local("c1", offset=8)
            p.load_local("c2", offset=16)
            p.load_local("c3", offset=24)
        m = _module(body)
        inst = instrument_module(m)
        ann = inst.annotations
        assert ann.n_static_instrumented == 1
        proxy = next(iter(ann.loads.values()))
        assert proxy.cls is LoadClass.CONSTANT
        assert proxy.n_const == 2

    def test_fig2_half_loads_instrumented(self):
        """Fig. 2's takeaway: with a 50/50 constant mix, about half of the
        static loads carry instrumentation."""
        def body(p):
            with p.loop("i", 0, 4):
                p.load("v", base="arr", index="i", scale=8)
                p.load_local("c1", offset=8)
                p.load("w", base="arr", index="i", scale=8)
                p.load_local("c2", offset=16)
        m = _module(body)
        inst = instrument_module(m)
        assert inst.annotations.instrumented_fraction == pytest.approx(0.5)

    def test_block_without_loads_untouched(self):
        m = _module(lambda p: p.mov("x", 1))
        inst = instrument_module(m)
        assert inst.annotations.n_static_loads == 0
        assert not inst.annotations.ptwrites


class TestSemanticsPreserved:
    def test_instrumented_module_computes_same_result(self):
        def body(p):
            p.mov("acc", 0)
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="i", scale=8)
                p.add("acc", "acc", "v")
            p.ret("acc")
        b = ProgramBuilder("m")
        with b.proc("f", params=("arr",)) as p:
            body(p)
        m = b.build()
        inst = instrument_module(m)

        from repro.simmem.address_space import AddressSpace

        space = AddressSpace()
        for i in range(8):
            space.store_value(0x1000 + 8 * i, i * i)
        rv1 = Interpreter(m, space).run("f", 0x1000).rv
        rv2 = Interpreter(inst.module, space).run("f", 0x1000, mode="instrumented").rv
        assert rv1 == rv2 == sum(i * i for i in range(8))

    def test_original_module_not_mutated(self):
        m = _module(lambda p: p.load("v", base="arr"))
        before = m.n_instructions()
        instrument_module(m)
        assert m.n_instructions() == before

    def test_source_lines_preserved(self):
        m = _module(lambda p: p.load("v", base="arr"))
        inst = instrument_module(m)
        orig_lines = {i.line for i in m.procedures["f"].loads()}
        new_lines = {a.line for a in inst.annotations.loads.values()}
        assert new_lines == orig_lines
