"""Tests for decoder resynchronization after packet loss."""

import numpy as np
import pytest

from repro.instrument.instrumenter import instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter
from repro.simmem.address_space import AddressSpace


@pytest.fixture(scope="module")
def two_reg_run():
    """A kernel whose loads each emit two ptwrite packets (base + index)."""
    b = ProgramBuilder("m")
    with b.proc("f", params=("arr",)) as p:
        p.mov("v", 0)
        with p.loop("i", 0, 32):
            p.load("v", base="arr", index="v", scale=8)
        p.ret(0)
    module = b.build()
    inst = instrument_module(module)
    space = AddressSpace()
    for i in range(32):
        space.store_value(0x1000 + 8 * i, (i * 7) % 32)
    res = Interpreter(inst.module, space).run("f", 0x1000, mode="instrumented")
    return inst, res.packets


class TestResync:
    def test_clean_stream_identical(self, two_reg_run):
        inst, packets = two_reg_run
        strict = rebuild_trace(packets, inst.annotations)
        relaxed = rebuild_trace(packets, inst.annotations, resync=True)
        assert np.array_equal(strict, relaxed)

    def test_orphan_head_dropped(self, two_reg_run):
        inst, packets = two_reg_run
        damaged = packets[1:]  # lost the first base packet
        with pytest.raises(ValueError):
            rebuild_trace(damaged, inst.annotations)
        out = rebuild_trace(damaged, inst.annotations, resync=True)
        clean = rebuild_trace(packets, inst.annotations)
        # first record lost, the rest reconstructed exactly
        assert np.array_equal(out, clean[1:])

    def test_mid_stream_drop_discards_split_group_only(self, two_reg_run):
        inst, packets = two_reg_run
        # drop one continuation packet in the middle: its group truncates
        k = 11  # index packet of record 5 (groups of 2: head at even idx)
        damaged = np.delete(packets, k)
        out = rebuild_trace(damaged, inst.annotations, resync=True)
        clean = rebuild_trace(packets, inst.annotations)
        assert len(out) == len(clean) - 1
        # every surviving record has a correct address
        surviving = set(map(int, out["t"]))
        mask = np.array([int(t) in surviving for t in clean["t"]])
        assert np.array_equal(out["addr"], clean["addr"][mask])

    def test_burst_drop(self, two_reg_run):
        inst, packets = two_reg_run
        # drop a burst starting mid-record
        damaged = np.concatenate([packets[:7], packets[20:]])
        out = rebuild_trace(damaged, inst.annotations, resync=True)
        clean = rebuild_trace(packets, inst.annotations)
        assert 0 < len(out) < len(clean)
        # reconstructed addresses form a subset of the clean ones
        clean_set = {(int(t), int(a)) for t, a in zip(clean["t"], clean["addr"])}
        for t, a in zip(out["t"], out["addr"]):
            assert (int(t), int(a)) in clean_set

    def test_all_packets_lost(self, two_reg_run):
        inst, packets = two_reg_run
        out = rebuild_trace(packets[1:1], inst.annotations, resync=True)
        assert len(out) == 0

    def test_only_orphans_left(self, two_reg_run):
        inst, packets = two_reg_run
        # a stream of one continuation packet only
        out = rebuild_trace(packets[1:2], inst.annotations, resync=True)
        assert len(out) == 0
