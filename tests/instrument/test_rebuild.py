"""Tests for trace rebuilding from raw ptwrite packets."""

import numpy as np
import pytest

from repro.instrument.classify import classify_module
from repro.instrument.instrumenter import instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter, PTW_DTYPE
from repro.simmem.address_space import AddressSpace
from repro.trace.event import LoadClass


def _run_both(body, setup=None, params=("arr", "ptr")):
    b = ProgramBuilder("m")
    with b.proc("f", params=params) as p:
        body(p)
        p.ret(0)
    m = b.build()
    classes = classify_module(m)
    inst = instrument_module(m, classes)
    space = AddressSpace()
    if setup:
        setup(space)
    cls_map = {a: i.cls for a, i in classes.items()}
    oracle = Interpreter(m, space, cls_map).run("f", 0x1000, 0x8000)
    packets = Interpreter(inst.module, space).run(
        "f", 0x1000, 0x8000, mode="instrumented"
    ).packets
    return oracle.events, rebuild_trace(packets, inst.annotations)


class TestReconstruction:
    def test_simple_strided_addresses_match(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="i", scale=8, offset=32)
        oracle, rebuilt = _run_both(body)
        assert np.array_equal(oracle["addr"], rebuilt["addr"])
        assert np.array_equal(oracle["t"], rebuilt["t"])

    def test_two_register_addresses_reconstructed(self):
        def setup(space):
            for i in range(8):
                space.store_value(0x1000 + 8 * i, (i * 3) % 8)

        def body(p):
            p.mov("v", 0)
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="v", scale=8)
        oracle, rebuilt = _run_both(body, setup)
        assert np.array_equal(oracle["addr"], rebuilt["addr"])

    def test_constants_become_proxy_counts(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load_local("c", offset=8)
                p.load("v", base="arr", index="i", scale=8)
        oracle, rebuilt = _run_both(body)
        # 8 oracle loads; 4 rebuilt records each carrying one constant
        assert len(oracle) == 8
        assert len(rebuilt) == 4
        assert rebuilt["n_const"].sum() == 4
        nc = oracle[oracle["cls"] != int(LoadClass.CONSTANT)]
        assert np.array_equal(nc["addr"], rebuilt["addr"])

    def test_classes_carried_through(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load("j", base="ptr", index="i", scale=8)
                p.load("v", base="arr", index="j", scale=8)
        _, rebuilt = _run_both(body)
        assert set(rebuilt["cls"]) == {int(LoadClass.STRIDED), int(LoadClass.IRREGULAR)}

    def test_fn_field_set(self):
        def body(p):
            p.load("v", base="arr")
        _, rebuilt = _run_both(body)
        assert rebuilt["fn"][0] == 0


class TestErrors:
    def test_empty_packets(self):
        m = ProgramBuilder("m")
        with m.proc("f") as p:
            p.load_local("c")
            p.ret(0)
        inst = instrument_module(m.build())
        out = rebuild_trace(np.zeros(0, dtype=PTW_DTYPE), inst.annotations)
        assert len(out) == 0

    def test_unknown_ptwrite_ip_rejected(self):
        b = ProgramBuilder("m")
        with b.proc("f", params=("arr",)) as p:
            p.load("v", base="arr")
            p.ret(0)
        inst = instrument_module(b.build())
        bogus = np.zeros(1, dtype=PTW_DTYPE)
        bogus["ip"] = 0xDEAD
        with pytest.raises(ValueError):
            rebuild_trace(bogus, inst.annotations)

    def test_stream_starting_mid_record_rejected(self):
        def body(p):
            p.mov("v", 0)
            with p.loop("i", 0, 4):
                p.load("v", base="arr", index="v", scale=8)
        b = ProgramBuilder("m")
        with b.proc("f", params=("arr",)) as p:
            body(p)
            p.ret(0)
        inst = instrument_module(b.build())
        space = AddressSpace()
        packets = Interpreter(inst.module, space).run(
            "f", 0x1000, mode="instrumented"
        ).packets
        with pytest.raises(ValueError):
            rebuild_trace(packets[1:], inst.annotations)  # drop the base packet
