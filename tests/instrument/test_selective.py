"""Tests for selective instrumentation (the paper's Step-1 ROI method)."""

import numpy as np
import pytest

from repro.instrument.instrumenter import instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter
from repro.isa.program import Opcode
from repro.simmem.address_space import AddressSpace


def _two_proc_module():
    b = ProgramBuilder("m")
    for name in ("hot", "cold"):
        with b.proc(name, params=("arr",)) as p:
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="i", scale=8)
            p.ret(0)
    with b.proc("main", params=("arr",)) as p:
        p.call(None, "hot", "arr")
        p.call(None, "cold", "arr")
        p.ret(0)
    return b.build()


class TestSelectiveInstrumentation:
    def test_only_selected_procs_get_ptwrites(self):
        inst = instrument_module(_two_proc_module(), only_procs={"hot"})
        for name, proc in inst.module.procedures.items():
            has_ptw = any(
                i.op is Opcode.PTWRITE for i in proc.instructions()
            )
            assert has_ptw == (name == "hot"), name

    def test_unselected_loads_counted_as_suppressed(self):
        inst = instrument_module(_two_proc_module(), only_procs={"hot"})
        ann = inst.annotations
        assert ann.n_static_loads == 2
        assert ann.n_static_instrumented == 1
        assert ann.n_static_suppressed == 1

    def test_execution_traces_only_roi(self):
        module = _two_proc_module()
        inst = instrument_module(module, only_procs={"hot"})
        space = AddressSpace()
        res = Interpreter(inst.module, space).run("main", 0x1000, mode="instrumented")
        events = rebuild_trace(res.packets, inst.annotations)
        # all 16 loads executed, only hot's 8 recorded
        assert res.n_loads == 16
        assert len(events) == 8
        fn_names = {fid: n for n, fid in inst.module.proc_ids().items()}
        assert {fn_names[int(f)] for f in np.unique(events["fn"])} == {"hot"}

    def test_timestamps_still_count_all_loads(self):
        """Unselected loads advance the load counter (sampling geometry
        is preserved) even though they emit nothing."""
        module = _two_proc_module()
        inst = instrument_module(module, only_procs={"cold"})
        space = AddressSpace()
        res = Interpreter(inst.module, space).run("main", 0x1000, mode="instrumented")
        events = rebuild_trace(res.packets, inst.annotations)
        # cold runs second: its records start after hot's 8 silent loads
        assert events["t"][0] >= 8

    def test_semantics_unchanged(self):
        module = _two_proc_module()
        inst = instrument_module(module, only_procs={"hot"})
        space = AddressSpace()
        rv = Interpreter(inst.module, space).run("main", 0x1000, mode="instrumented").rv
        assert rv == 0

    def test_unknown_proc_rejected(self):
        with pytest.raises(KeyError):
            instrument_module(_two_proc_module(), only_procs={"ghost"})

    def test_none_means_everything(self):
        inst = instrument_module(_two_proc_module(), only_procs=None)
        assert inst.annotations.n_static_instrumented == 2

    def test_matches_hardware_guard_result(self):
        """Selective instrumentation and hardware guards produce the same
        ROI record stream (the paper's two methods are interchangeable)."""
        from repro.trace.guards import RegionOfInterest, apply_guards

        module = _two_proc_module()
        space1, space2 = AddressSpace(), AddressSpace()
        # method 1: selective instrumentation
        sel = instrument_module(module, only_procs={"hot"})
        res1 = Interpreter(sel.module, space1).run("main", 0x1000, mode="instrumented")
        ev1 = rebuild_trace(res1.packets, sel.annotations)
        # method 2: instrument everything, guard afterwards
        full = instrument_module(module)
        res2 = Interpreter(full.module, space2).run("main", 0x1000, mode="instrumented")
        ev2_all = rebuild_trace(res2.packets, full.annotations)
        hot_ips = [
            a.load_ip for a in full.annotations.loads.values() if a.proc == "hot"
        ]
        roi = RegionOfInterest(ranges=[(min(hot_ips), max(hot_ips) + 4)])
        ev2, _ = apply_guards(ev2_all, roi)
        assert np.array_equal(ev1["addr"], ev2["addr"])
        assert np.array_equal(ev1["t"], ev2["t"])
