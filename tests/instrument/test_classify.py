"""Tests for load classification (paper SS:III-B rules)."""

from repro.isa.builder import ProgramBuilder
from repro.instrument.classify import classify_loads, classify_module
from repro.trace.event import LoadClass


def _classify(body, params=("arr", "n", "ptr")):
    b = ProgramBuilder("m")
    with b.proc("f", params=params) as p:
        body(p)
        p.ret(0)
    proc = b.build().procedures["f"]
    infos = classify_loads(proc)
    return [infos[l.addr] for l in proc.loads()]


class TestConstant:
    def test_frame_relative_scalar(self):
        out = _classify(lambda p: p.load_local("x", offset=8))
        assert out[0].cls is LoadClass.CONSTANT

    def test_global_relative_scalar(self):
        out = _classify(lambda p: p.load_global("x", offset=16))
        assert out[0].cls is LoadClass.CONSTANT

    def test_frame_with_index_not_constant(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load("x", base="fp", index="i", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED  # fp is invariant, i is the IV

    def test_constant_inside_loop_stays_constant(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load_local("x", offset=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.CONSTANT


class TestStrided:
    def test_direct_iv_index(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="i", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED
        assert out[0].stride == 8

    def test_derived_iv_stride(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.mul("i4", "i", 4)
                p.load("v", base="arr", index="i4", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED
        assert out[0].stride == 32

    def test_iv_as_base(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.add("addr", "arr", "i")
                p.load("v", base="addr")
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED
        assert out[0].stride == 1

    def test_outer_loop_iv_seen_from_inner_loop(self):
        def body(p):
            with p.loop("i", 0, 8):
                with p.loop("j", 0, 4):
                    p.load("v", base="arr", index="i", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED

    def test_unknown_but_constant_stride(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.mul("ik", "i", "n")  # n invariant but not literal
                p.load("v", base="arr", index="ik", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED
        assert out[0].stride is None


class TestIrregular:
    def test_pointer_chase(self):
        def body(p):
            p.mov("v", 0)
            with p.loop("i", 0, 8):
                p.load("v", base="arr", index="v", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.IRREGULAR

    def test_load_defined_index(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.load("j", base="ptr", index="i", scale=8)
                p.load("v", base="arr", index="j", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.STRIDED
        assert out[1].cls is LoadClass.IRREGULAR

    def test_straight_line_heap_load(self):
        out = _classify(lambda p: p.load("v", base="arr", offset=8))
        assert out[0].cls is LoadClass.IRREGULAR

    def test_loop_invariant_address_is_irregular(self):
        # paper rule: "all other loads are classified as irregular"
        def body(p):
            with p.loop("i", 0, 8):
                p.load("v", base="arr", offset=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.IRREGULAR

    def test_multi_def_register(self):
        def body(p):
            with p.loop("i", 0, 8):
                p.add("x", "x", 1)
                p.add("x", "x", 2)
                p.load("v", base="arr", index="x", scale=8)
        out = _classify(body)
        assert out[0].cls is LoadClass.IRREGULAR


class TestModuleLevel:
    def test_classify_module_covers_all_procs(self):
        b = ProgramBuilder("m")
        with b.proc("a") as p:
            p.load_local("x")
            p.ret(0)
        with b.proc("b", params=("arr",)) as p:
            with p.loop("i", 0, 4):
                p.load("v", base="arr", index="i", scale=8)
            p.ret(0)
        m = b.build()
        infos = classify_module(m)
        assert len(infos) == 2
        assert {i.cls for i in infos.values()} == {LoadClass.CONSTANT, LoadClass.STRIDED}
        assert {i.proc for i in infos.values()} == {"a", "b"}
