"""Tests for the composable microbenchmarks."""

import numpy as np
import pytest

from repro.trace.event import LoadClass
from repro.workloads.microbench import (
    MICROBENCH_SPECS,
    build_microbench,
    parse_spec,
    run_microbench,
)


class TestParse:
    def test_single(self):
        assert parse_spec("str4") == [("str4",)]
        assert parse_spec("irr") == [("irr",)]

    def test_series(self):
        assert parse_spec("str1|irr") == [("str1",), ("irr",)]

    def test_conditional(self):
        assert parse_spec("str4/irr") == [("str4", "irr")]

    def test_mixed(self):
        assert parse_spec("str2|str8/irr") == [("str2",), ("str8", "irr")]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_spec("")
        with pytest.raises(ValueError):
            parse_spec("walk7")
        with pytest.raises(ValueError):
            parse_spec("a/b/c")

    def test_suite_specs_all_parse(self):
        for spec in MICROBENCH_SPECS:
            assert parse_spec(spec)


class TestBuild:
    def test_one_proc_per_segment_plus_main(self):
        m = build_microbench("str1|irr|str4", n_elems=256, repeats=2)
        assert len(m.procedures) == 4
        assert "main" in m.procedures

    def test_bad_args(self):
        with pytest.raises(ValueError):
            build_microbench("str1", n_elems=100)  # not a power of two
        with pytest.raises(ValueError):
            build_microbench("str1", repeats=0)
        with pytest.raises(ValueError):
            build_microbench("str1", opt_level="O2")


class TestRun:
    def test_strided_spec_classified_strided(self):
        r = run_microbench("str4", n_elems=512, repeats=2)
        nc = r.events_full[r.events_full["cls"] != int(LoadClass.CONSTANT)]
        assert np.all(nc["cls"] == int(LoadClass.STRIDED))

    def test_irr_spec_classified_irregular(self):
        r = run_microbench("irr", n_elems=512, repeats=2)
        nc = r.events_full[r.events_full["cls"] != int(LoadClass.CONSTANT)]
        assert np.all(nc["cls"] == int(LoadClass.IRREGULAR))

    def test_chase_visits_every_element(self):
        r = run_microbench("irr", n_elems=256, repeats=1)
        irr = r.events_full[r.events_full["cls"] == int(LoadClass.IRREGULAR)]
        # a Sattolo cycle of 256 elements visited 256 times touches all
        assert len(np.unique(irr["addr"])) == 256

    def test_conditional_mixes_classes(self):
        r = run_microbench("str4/irr", n_elems=512, repeats=2)
        classes = set(r.events_full["cls"])
        assert int(LoadClass.STRIDED) in classes
        assert int(LoadClass.IRREGULAR) in classes

    def test_observed_matches_oracle_nonconstant(self):
        r = run_microbench("str2|irr", n_elems=256, repeats=2)
        nc = r.events_full[r.events_full["cls"] != int(LoadClass.CONSTANT)]
        assert np.array_equal(nc["addr"], r.events_observed["addr"])

    def test_o0_compresses_more_than_o3(self):
        k = {}
        for opt in ("O0", "O3"):
            r = run_microbench("str1", n_elems=256, repeats=2, opt_level=opt)
            k[opt] = 1 + r.events_observed["n_const"].sum() / len(r.events_observed)
        assert k["O0"] > k["O3"] > 1.0

    def test_counts_structure(self):
        r = run_microbench("str1", n_elems=256, repeats=2)
        assert r.counts.n_ptwrites > 0
        assert r.counts_baseline.n_ptwrites == 0
        assert r.counts.n_loads == r.counts_baseline.n_loads

    def test_deterministic_given_seed(self):
        a = run_microbench("irr", n_elems=256, repeats=1, seed=5)
        b = run_microbench("irr", n_elems=256, repeats=1, seed=5)
        assert np.array_equal(a.events_full["addr"], b.events_full["addr"])

    def test_repeats_scale_loads(self):
        a = run_microbench("str1", n_elems=256, repeats=1)
        b = run_microbench("str1", n_elems=256, repeats=4)
        assert b.n_loads == 4 * a.n_loads
