"""Tests for the GAP Connected Components workload."""

import networkx as nx
import numpy as np
import pytest

from repro.workloads.gap.cc import run_cc
from repro.workloads.gap.graphs import kronecker_edges


@pytest.fixture(scope="module")
def both():
    return {alg: run_cc(alg, scale=8, edge_factor=4, seed=0) for alg in ("cc", "cc-sv")}


def _true_components(scale, edge_factor, seed):
    n, edges = kronecker_edges(scale, edge_factor, seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(map(tuple, edges[edges[:, 0] != edges[:, 1]]))
    return {frozenset(c) for c in nx.connected_components(g)}


class TestCorrectness:
    @pytest.mark.parametrize("alg", ["cc", "cc-sv"])
    def test_matches_networkx(self, both, alg):
        truth = _true_components(8, 4, 0)
        got: dict[int, set[int]] = {}
        for v, label in enumerate(both[alg].components):
            got.setdefault(int(label), set()).add(v)
        assert {frozenset(s) for s in got.values()} == truth

    def test_labels_are_representatives(self, both):
        comp = both["cc"].components
        # every label is itself labelled with itself (fully compressed)
        assert np.all(comp[comp] == comp)

    def test_algorithms_agree_on_partition(self, both):
        a = both["cc"].components
        b = both["cc-sv"].components
        # same partition even if label choices differ
        relabel = {}
        for x, y in zip(a, b):
            assert relabel.setdefault(int(x), int(y)) == int(y)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_cc("bogus", scale=6)


class TestShapes:
    def test_afforest_cheaper_overall(self, both):
        """The paper's headline: cc (Afforest) is much faster than cc-sv."""
        assert both["cc"].sim_time < both["cc-sv"].sim_time
        assert both["cc"].n_loads < both["cc-sv"].n_loads

    def test_sv_iterates(self, both):
        assert both["cc-sv"].n_iterations >= 1
        assert both["cc"].n_iterations == 1

    def test_cc_region_extent(self, both):
        for r in both.values():
            lo, hi = r.region_extents["cc"]
            assert hi - lo >= 256 * 8

    def test_deterministic(self):
        a = run_cc("cc", scale=6, edge_factor=4, seed=3)
        b = run_cc("cc", scale=6, edge_factor=4, seed=3)
        assert np.array_equal(a.components, b.components)
        assert len(a.events) == len(b.events)
