"""Tests for the GAP PageRank workload."""

import numpy as np
import pytest

from repro.workloads.gap.graphs import kronecker_edges
from repro.workloads.gap.pagerank import run_pagerank


@pytest.fixture(scope="module")
def both():
    return {
        alg: run_pagerank(alg, scale=8, edge_factor=8, seed=0, max_iters=30)
        for alg in ("pr", "pr-spmv")
    }


def _reference_scores(scale, edge_factor, seed, iters=100):
    n, edges = kronecker_edges(scale, edge_factor, seed)
    sym = np.concatenate([edges, edges[:, ::-1]])
    sym = sym[sym[:, 0] != sym[:, 1]]
    order = np.lexsort((sym[:, 1], sym[:, 0]))
    sym = sym[order]
    keep = np.ones(len(sym), bool)
    keep[1:] = np.any(sym[1:] != sym[:-1], axis=1)
    sym = sym[keep]
    deg = np.maximum(np.bincount(sym[:, 0], minlength=n), 1).astype(float)
    s = np.full(n, 1.0 / n)
    for _ in range(iters):
        contrib = s / deg
        acc = np.zeros(n)
        np.add.at(acc, sym[:, 1], contrib[sym[:, 0]])
        s = (1 - 0.85) / n + 0.85 * acc
    return s


class TestCorrectness:
    def test_scores_close_to_fixed_point(self, both):
        ref = _reference_scores(8, 8, 0)
        for alg, r in both.items():
            err = np.abs(r.scores - ref).sum()
            assert err < 0.05, alg

    def test_scores_positive(self, both):
        for r in both.values():
            assert np.all(r.scores > 0)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_pagerank("pr-bogus", scale=6)


class TestShapes:
    def test_pr_converges_in_fewer_or_equal_iterations(self, both):
        assert both["pr"].n_iterations <= both["pr-spmv"].n_iterations

    def test_pr_fewer_accesses(self, both):
        assert both["pr"].n_loads < both["pr-spmv"].n_loads

    def test_pr_faster_simulated(self, both):
        assert both["pr"].sim_time < both["pr-spmv"].sim_time

    def test_oscore_extent_recorded(self, both):
        for r in both.values():
            lo, hi = r.region_extents["o-score"]
            assert hi - lo >= 256 * 8

    def test_phase_bounds(self, both):
        r = both["pr"]
        (g0, g1), (r0, r1) = r.phase_bounds["graph_gen"], r.phase_bounds["rank"]
        assert g0 == 0 and g1 == r0 and r1 == len(r.events)
