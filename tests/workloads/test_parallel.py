"""Tests for thread interleaving and the orthogonality claim."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.core.diagnostics import compute_diagnostics
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.sampler import SamplingConfig
from repro.workloads.parallel import interleave_streams, split_vertices


def _thread_stream(tid: int, n=30_000):
    rng = derive_rng(tid, "parallel-thread-stream")
    addr = np.where(
        np.arange(n) % 2 == 0,
        0x10_0000 + tid * (1 << 20) + (np.arange(n) * 8) % 65536,
        0x80_0000 + rng.integers(0, 8192, n) * 8,  # shared region
    )
    cls = np.where(np.arange(n) % 2 == 0, 1, 2)
    return make_events(ip=1 + tid, addr=addr, cls=cls, fn=tid)


class TestSplitVertices:
    def test_partition(self):
        parts = split_vertices(10, 3)
        assert len(parts) == 3
        assert np.array_equal(np.concatenate(parts), np.arange(10))

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            split_vertices(4, 0)


class TestInterleave:
    def test_preserves_every_record(self):
        streams = [_thread_stream(t, 5000) for t in range(4)]
        merged = interleave_streams(streams)
        assert len(merged) == 20_000
        # per-thread subsequences stay in order
        for t in range(4):
            sub = merged[merged["fn"] == t]
            assert np.array_equal(sub["addr"], streams[t]["addr"])

    def test_timestamps_renumbered(self):
        merged = interleave_streams([_thread_stream(0, 100), _thread_stream(1, 100)])
        assert np.array_equal(merged["t"], np.arange(200))

    def test_quantum_controls_burst_size(self):
        merged = interleave_streams(
            [_thread_stream(0, 1000), _thread_stream(1, 1000)],
            quantum=10,
            jitter=0.0,
        )
        # threads alternate every 10 records
        fns = merged["fn"][:40]
        assert list(fns[:10]) == [0] * 10
        assert list(fns[10:20]) == [1] * 10

    def test_bad_args(self):
        s = _thread_stream(0, 10)
        with pytest.raises(ValueError):
            interleave_streams([s], quantum=0)
        with pytest.raises(ValueError):
            interleave_streams([s], jitter=1.5)
        with pytest.raises(TypeError):
            interleave_streams([np.zeros(3)])


class TestOrthogonality:
    """Paper SS:VI: the analysis is orthogonal to CPU parallelism — the
    intensive diagnostics of a trace are stable under interleaving."""

    def test_class_mix_invariant(self):
        streams = [_thread_stream(t) for t in range(4)]
        serial = np.concatenate(streams)
        serial["t"] = np.arange(len(serial))
        merged = interleave_streams(streams, seed=7)
        d_serial = compute_diagnostics(serial)
        d_merged = compute_diagnostics(merged)
        # extensive quantities identical (same records)
        assert d_serial.A_implied == d_merged.A_implied
        assert d_serial.F == d_merged.F
        assert d_serial.F_str == d_merged.F_str
        assert abs(d_serial.dF - d_merged.dF) < 1e-12

    def test_sampled_diagnostics_stable(self):
        streams = [_thread_stream(t) for t in range(4)]
        serial = np.concatenate(streams)
        serial["t"] = np.arange(len(serial))
        merged = interleave_streams(streams, seed=7)
        cfg = SamplingConfig(period=4999, buffer_capacity=512, seed=0)
        d_s = compute_diagnostics(collect_sampled_trace(serial, config=cfg).events)
        d_m = compute_diagnostics(collect_sampled_trace(merged, config=cfg).events)
        # sampled estimates of intensive metrics agree within noise
        assert abs(d_s.dF - d_m.dF) < 0.15
        assert abs(d_s.F_str_pct - d_m.F_str_pct) < 10

    def test_interleaving_does_shorten_private_reuse(self):
        """Not everything is invariant: interleaving dilutes per-thread
        temporal locality inside sample windows — the cross-thread effect
        the paper defers to future work."""
        from repro.core.reuse import mean_reuse_distance

        streams = [_thread_stream(t) for t in range(4)]
        serial = np.concatenate(streams)
        serial["t"] = np.arange(len(serial))
        merged = interleave_streams(streams, quantum=32, seed=7)
        cfg = SamplingConfig(period=4999, buffer_capacity=512, seed=0, fill_jitter=0.0)
        col_s = collect_sampled_trace(serial, config=cfg)
        col_m = collect_sampled_trace(merged, config=cfg)
        d_s = mean_reuse_distance(col_s.events, 64, col_s.sample_id)
        d_m = mean_reuse_distance(col_m.events, 64, col_m.sample_id)
        assert d_m > d_s  # other threads' blocks interleave into reuses
