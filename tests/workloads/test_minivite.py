"""Tests for the miniVite Louvain workload."""

import numpy as np
import pytest

from repro.core.windows import code_windows
from repro.workloads.minivite import MINIVITE_VARIANTS, modularity, run_minivite


@pytest.fixture(scope="module")
def results():
    return {
        v: run_minivite(v, scale=7, edge_factor=8, seed=0, max_iters=2)
        for v in MINIVITE_VARIANTS
    }


class TestModularityFunction:
    def test_singletons_near_zero_or_negative(self):
        edges = np.array([[0, 1], [1, 0], [1, 2], [2, 1]])
        q = modularity(3, edges, np.arange(3))
        assert q <= 0.0

    def test_perfect_split_positive(self):
        # two triangles
        tri = lambda base: [
            [base, base + 1],
            [base + 1, base],
            [base + 1, base + 2],
            [base + 2, base + 1],
            [base + 2, base],
            [base, base + 2],
        ]
        edges = np.array(tri(0) + tri(3))
        comm = np.array([0, 0, 0, 1, 1, 1])
        assert modularity(6, edges, comm) > 0.4

    def test_empty_graph(self):
        assert modularity(3, np.empty((0, 2)), np.arange(3)) == 0.0


class TestLouvain:
    def test_improves_modularity(self, results):
        for v, r in results.items():
            singleton_q = 0.0  # singleton partition has Q <= 0 for these graphs
            assert r.modularity > singleton_q, v

    def test_all_variants_agree_roughly(self, results):
        qs = [r.modularity for r in results.values()]
        assert max(qs) - min(qs) < 0.2

    def test_moves_happened(self, results):
        assert all(r.n_moves > 0 for r in results.values())

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            run_minivite("v9", scale=6)


class TestAccessShapes:
    def test_v1_insert_irregular_v23_strided(self, results):
        pct = {}
        for v, r in results.items():
            cw = code_windows(r.events, fn_names=r.fn_names)
            pct[v] = cw["map.insert"].F_str_pct
        assert pct["v1"] < 10
        assert pct["v2"] > 40
        assert pct["v3"] > 40

    def test_v2_has_most_map_accesses(self, results):
        a = {}
        for v, r in results.items():
            cw = code_windows(r.events, fn_names=r.fn_names)
            a[v] = cw["map.insert"].A_implied
        assert a["v2"] > a["v3"]
        assert a["v2"] > a["v1"]

    def test_getmax_strided_only_for_hopscotch(self, results):
        cw1 = code_windows(results["v1"].events, fn_names=results["v1"].fn_names)
        cw3 = code_windows(results["v3"].events, fn_names=results["v3"].fn_names)
        assert cw1["getMax"].F_str_pct < cw3["getMax"].F_str_pct

    def test_sim_time_ordering(self, results):
        """The memory-cost model makes v1 (irregular) slowest per access."""
        per_access = {
            v: r.sim_time / max(1, r.n_loads) for v, r in results.items()
        }
        assert per_access["v1"] > per_access["v2"]
        assert per_access["v1"] > per_access["v3"]

    def test_phases_partition_trace(self, results):
        r = results["v1"]
        (g0, g1), (m0, m1) = r.phase_bounds["graph_gen"], r.phase_bounds["modularity"]
        assert g0 == 0 and g1 == m0 and m1 == len(r.events)

    def test_region_extents_present(self, results):
        r = results["v2"]
        assert "map" in r.region_extents
        assert "graph-targets" in r.region_extents
        lo, hi = r.region_extents["map"]
        assert hi > lo

    def test_phase_detection_separates_gen_from_modularity(self, results):
        """graph generation (mixed strided build) and modularity (map
        traffic) have different access mixes the detector can see."""
        from repro.core.phases import detect_phases
        from repro.trace.collector import collect_sampled_trace
        from repro.trace.sampler import SamplingConfig

        r = results["v1"]
        cfg = SamplingConfig(period=997, buffer_capacity=128, fill_jitter=0.0)
        col = collect_sampled_trace(r.events, r.n_loads, cfg)
        phases = detect_phases(col, threshold=0.3)
        assert len(phases) >= 2
        # the first phase covers the graph-generation prefix
        gen_end_t = r.events["t"][r.phase_bounds["graph_gen"][1] - 1]
        assert phases[0].t_start <= int(gen_end_t)

    def test_map_region_recycled(self, results):
        """Per-vertex maps reuse freed blocks: the extent stays compact."""
        r = results["v3"]
        lo, hi = r.region_extents["map"]
        # thousands of per-vertex tables would otherwise spread over
        # hundreds of MB of address space
        assert hi - lo < 64 * 1024 * 1024
