"""Tests for the memory-access cost model."""

import numpy as np
import pytest

from repro.trace.event import make_events
from repro.workloads.cost import MemoryCostModel


class TestMemoryCostModel:
    def test_irregular_costs_more(self):
        model = MemoryCostModel()
        strided = make_events(ip=1, addr=np.arange(100), cls=1)
        irregular = make_events(ip=1, addr=np.arange(100), cls=2)
        assert model.runtime(irregular) > model.runtime(strided)

    def test_suppressed_constants_counted(self):
        model = MemoryCostModel()
        plain = make_events(ip=1, addr=[1], cls=1)
        proxy = make_events(ip=1, addr=[1], cls=1, n_const=10)
        assert model.runtime(proxy) > model.runtime(plain)

    def test_linear_in_length(self):
        model = MemoryCostModel()
        one = make_events(ip=1, addr=np.arange(100), cls=1)
        two = make_events(ip=1, addr=np.arange(200), cls=1)
        assert model.runtime(two) == pytest.approx(2 * model.runtime(one))

    def test_empty(self):
        model = MemoryCostModel()
        assert model.runtime(make_events(ip=1, addr=np.arange(0))) == 0.0

    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            MemoryCostModel().runtime(np.zeros(3))
