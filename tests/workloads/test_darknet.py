"""Tests for the Darknet-style inference workload."""

import numpy as np
import pytest

from repro.core.windows import code_windows
from repro.trace.event import LoadClass
from repro.workloads.darknet import MODELS, LayerSpec, run_darknet


@pytest.fixture(scope="module")
def both():
    return {m: run_darknet(m) for m in ("alexnet", "resnet152")}


class TestLayerSpec:
    def test_dims_validated(self):
        with pytest.raises(ValueError):
            LayerSpec(m=0, k=1, n=1)

    def test_models_defined(self):
        assert set(MODELS) == {"alexnet", "resnet152"}
        assert len(MODELS["resnet152"]) > len(MODELS["alexnet"])


class TestRun:
    def test_unknown_model(self):
        with pytest.raises(ValueError):
            run_darknet("vgg")

    def test_event_counts_match_gemm_math(self, both):
        for name, r in both.items():
            expected = 0
            for l in MODELS[name]:
                expected += l.k * l.n  # im2col reads
                expected += l.m * l.k * (1 + 2 * l.n)  # gemm A + B row + C row
            # plus touch_const proxies; allow small slack
            assert abs(len(r.events) - expected) / expected < 0.02

    def test_layer_bounds_cover_trace(self, both):
        r = both["alexnet"]
        assert r.layer_bounds[0][0] >= 0
        assert r.layer_bounds[-1][1] == len(r.events)
        for (a0, a1), (b0, b1) in zip(r.layer_bounds, r.layer_bounds[1:]):
            assert a1 == b0

    def test_deterministic(self):
        a = run_darknet("alexnet", seed=1)
        b = run_darknet("alexnet", seed=1)
        assert np.array_equal(a.events["addr"], b.events["addr"])


class TestPaperShapes:
    def test_all_strided(self, both):
        for r in both.values():
            nc = r.events[r.events["cls"] != int(LoadClass.CONSTANT)]
            assert np.all(nc["cls"] == int(LoadClass.STRIDED))

    def test_gemm_dominates_footprint(self, both):
        for r in both.values():
            cw = code_windows(r.events, fn_names=r.fn_names)
            assert cw["gemm"].F > 3 * cw["im2col"].F
            assert cw["gemm"].A_implied > 10 * cw["im2col"].A_implied

    def test_resnet_bigger_than_alexnet(self, both):
        cw_a = code_windows(both["alexnet"].events, fn_names=both["alexnet"].fn_names)
        cw_r = code_windows(both["resnet152"].events, fn_names=both["resnet152"].fn_names)
        assert cw_r["gemm"].F > 2 * cw_a["gemm"].F
        assert both["resnet152"].n_loads > 2 * both["alexnet"].n_loads

    def test_high_store_rate(self, both):
        """Darknet's signature: stores rival loads (drives Fig. 7's 5-7x)."""
        for r in both.values():
            assert r.n_stores > 0.3 * r.n_loads
