"""Tests for the ISA-authored classic kernels."""

import numpy as np
import pytest

from repro.trace.event import LoadClass
from repro.workloads.kernels import KERNELS, build_kernel, run_kernel


class TestBuild:
    def test_all_kernels_build(self):
        for name in KERNELS:
            m = build_kernel(name, repeats=1)
            assert "main" in m.procedures

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            build_kernel("fft")
        with pytest.raises(ValueError):
            run_kernel("fft")

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            build_kernel("reduction", repeats=0)


class TestClassification:
    def test_matmul_all_strided(self):
        r = run_kernel("matmul", n=8, repeats=1)
        kernel_loads = [
            i for a, i in r.classes.items() if i.proc == "matmul"
        ]
        assert all(i.cls is LoadClass.STRIDED for i in kernel_loads)
        # A and C walk rows (8 B per k/j step); B walks columns — wait,
        # ikj order: B[k,j] moves 8 B per j. All unit-row strides here;
        # the outer-IV dependence is what matters.
        assert len(kernel_loads) == 3

    def test_stencil_offsets_all_strided_same_stride(self):
        r = run_kernel("stencil", n=128, repeats=1)
        kernel_loads = [i for i in r.classes.values() if i.proc == "stencil"]
        assert all(i.cls is LoadClass.STRIDED for i in kernel_loads)
        assert {i.stride for i in kernel_loads} == {8}
        assert len(kernel_loads) == 5  # radius 2 -> 5 taps

    def test_gather_split(self):
        r = run_kernel("gather", n=128, repeats=1)
        loads = [i for i in r.classes.values() if i.proc == "gather"]
        by_cls = {i.cls for i in loads}
        assert by_cls == {LoadClass.STRIDED, LoadClass.IRREGULAR}

    def test_reduction_strided(self):
        r = run_kernel("reduction", n=128, repeats=1)
        loads = [i for i in r.classes.values() if i.proc == "reduction"]
        assert [i.cls for i in loads] == [LoadClass.STRIDED]


class TestExecution:
    def test_matmul_load_count(self):
        n, reps = 8, 2
        r = run_kernel("matmul", n=n, repeats=reps)
        # A loaded n*n times, B and C n^3 times each, per repeat
        assert r.counts.n_loads == reps * (n * n + 2 * n ** 3)

    def test_gather_addresses_match_indices(self):
        r = run_kernel("gather", n=64, repeats=1)
        irr = r.events_full[r.events_full["cls"] == int(LoadClass.IRREGULAR)]
        table = r.regions["table"]
        assert np.all(irr["addr"] >= table.base)
        assert np.all(irr["addr"] < table.base + table.size)

    def test_reduction_computes_sum(self):
        r = run_kernel("reduction", n=32, repeats=1)
        # memory is zero-initialised -> sum 0; the plumbing is the test
        assert r.rv == 0

    def test_observed_matches_oracle(self):
        for name in ("stencil", "gather"):
            r = run_kernel(name, n=64, repeats=1)
            nc = r.events_full[r.events_full["cls"] != int(LoadClass.CONSTANT)]
            assert np.array_equal(nc["addr"], r.events_observed["addr"]), name

    def test_deterministic(self):
        a = run_kernel("gather", n=64, repeats=1, seed=9)
        b = run_kernel("gather", n=64, repeats=1, seed=9)
        assert np.array_equal(a.events_full["addr"], b.events_full["addr"])


class TestDiagnostics:
    def test_stencil_footprint_tight(self):
        from repro.core.diagnostics import compute_diagnostics

        r = run_kernel("stencil", n=256, repeats=1)
        d = compute_diagnostics(r.events_observed)
        # 5 taps over the same array: footprint ~ n*8 bytes, accesses 5x
        assert d.F < 256 * 8 + 64
        assert d.dF < 0.25

    def test_gather_mixes_growth(self):
        from repro.core.diagnostics import compute_diagnostics

        r = run_kernel("gather", n=512, repeats=1)
        d = compute_diagnostics(r.events_observed)
        assert 0 < d.F_irr_pct < 100
        assert 0 < d.F_str_pct < 100
