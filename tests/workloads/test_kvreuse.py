"""Tests for the KV-cache reuse workload family."""

import numpy as np
import pytest

from repro.core.cachesim import SweepPartial, sweep_configs, sweep_finalize, sweep_update
from repro.trace.event import LoadClass
from repro.workloads.kvreuse import KVREUSE_VARIANTS, run_kvreuse


@pytest.fixture(scope="module")
def runs():
    return {v: run_kvreuse(v, scale=8, seed=0) for v in KVREUSE_VARIANTS}


class TestRun:
    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            run_kvreuse("bogus")

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            run_kvreuse("prefix", scale=0)

    def test_deterministic(self):
        a = run_kvreuse("sessions", scale=6, seed=3)
        b = run_kvreuse("sessions", scale=6, seed=3)
        assert np.array_equal(a.events, b.events)

    def test_scopes_and_counts(self, runs):
        for r in runs.values():
            assert set(r.fn_names.values()) == {"prefix_scan", "decode_attend"}
            assert r.n_loads > len(r.events) > 0  # touch_const suppressed some

    def test_addresses_stay_in_pool(self, runs):
        # constant-class proxies live at synthetic frame addresses; all
        # data accesses must fall inside the allocated pool
        for r in runs.values():
            (region,) = [g for g in r.space.regions if g.name == "kv-pool"]
            data = r.events[r.events["cls"] != int(LoadClass.CONSTANT)]
            assert int(data["addr"].min()) >= region.base
            assert int(data["addr"].max()) < region.base + region.size

    def test_classes(self, runs):
        for r in runs.values():
            cls = set(np.unique(r.events["cls"]).tolist())
            assert int(LoadClass.STRIDED) in cls  # prefix re-scans
            assert int(LoadClass.IRREGULAR) in cls  # attention gathers


class TestReuseShapes:
    """The family exists to separate cache geometries — check it does."""

    def _hit_curve(self, r):
        """Fully-associative hit ratio per capacity (sweep prediction)."""
        grid = sweep_configs(lines=(64,), sets=(1,), ways=(64, 512, 4096))
        rows = sweep_finalize(sweep_update(SweepPartial(grid), r.events), grid)
        return [row.hit_ratio for row in rows]

    def test_prefix_variant_has_strong_reuse(self, runs):
        # a capacity holding the whole prefix captures nearly everything
        curve = self._hit_curve(runs["prefix"])
        assert curve[-1] > 0.9

    def test_tail_variant_streams(self, runs):
        # unstable tails: even the big cache hits far less than prefix's
        assert self._hit_curve(runs["tail"])[-1] < self._hit_curve(runs["prefix"])[-1]

    def test_session_interleaving_stretches_reuse(self, runs):
        # at a mid capacity, round-robin sessions hurt; at full capacity
        # (every session's prefix resident) the sessions variant recovers
        sess, pref = self._hit_curve(runs["sessions"]), self._hit_curve(runs["prefix"])
        assert sess[0] < pref[-1]
        assert sess[-1] > 0.75
