"""Tests for graph generators and instrumented CSR construction."""

import numpy as np
import pytest

from repro.simmem.address_space import AddressSpace
from repro.simmem.recorder import AccessRecorder
from repro.workloads.gap.graphs import build_csr, kronecker_edges, uniform_edges


class TestKronecker:
    def test_shape(self):
        n, edges = kronecker_edges(scale=8, edge_factor=4, seed=0)
        assert n == 256
        assert edges.shape == (1024, 2)
        assert edges.min() >= 0 and edges.max() < n

    def test_deterministic(self):
        _, a = kronecker_edges(8, 4, seed=1)
        _, b = kronecker_edges(8, 4, seed=1)
        assert np.array_equal(a, b)

    def test_skewed_degrees(self):
        """RMAT graphs have heavy-tailed degree distributions."""
        n, edges = kronecker_edges(scale=10, edge_factor=8, seed=0)
        deg = np.bincount(edges[:, 0], minlength=n)
        assert deg.max() > 5 * deg.mean()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            kronecker_edges(0)
        with pytest.raises(ValueError):
            kronecker_edges(4, edge_factor=0)


class TestUniform:
    def test_shape_and_range(self):
        edges = uniform_edges(100, avg_degree=4, seed=0)
        assert edges.shape == (400, 2)
        assert edges.max() < 100

    def test_flat_degrees(self):
        edges = uniform_edges(1024, avg_degree=16, seed=0)
        deg = np.bincount(edges[:, 0], minlength=1024)
        assert deg.max() < 4 * deg.mean()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            uniform_edges(1)


class TestBuildCsr:
    def test_structure_correct(self):
        space, rec = AddressSpace(), AccessRecorder()
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        g = build_csr(space, rec, 3, edges, symmetrize=True)
        assert sorted(g.neighbors(0, record=False)) == [1, 2]
        assert sorted(g.neighbors(2, record=False)) == [0, 1]

    def test_records_build_phase(self):
        space, rec = AddressSpace(), AccessRecorder()
        _, edges = kronecker_edges(6, 4, 0)
        build_csr(space, rec, 64, edges)
        ev = rec.finalize()
        assert len(ev) > 0
        assert "graph_build" in rec.function_names.values()

    def test_temp_buffers_freed(self):
        space, rec = AddressSpace(), AccessRecorder()
        edges = np.array([[0, 1]])
        build_csr(space, rec, 2, edges)
        names = {r.name for r in space.regions}
        assert "edge-buffer" not in names
        assert "degree-counters" not in names
