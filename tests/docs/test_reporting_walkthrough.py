"""Execute the visual-reporting walkthrough from ``docs/reporting.md``.

The handbook's worked example (trace a workload, render the
self-contained HTML report, boot a daemon with the live dashboard,
stream the trace in, prove the live rendering byte-identical to the
offline one, validate both pages) is extracted from the markdown and
run verbatim under ``bash -euo pipefail`` — so editing the walkthrough
into something that no longer works, or changing the CLI or dashboard
out from under it, fails the build instead of shipping a broken
handbook. ``memgaze`` and ``python`` shims on ``PATH`` map the doc's
commands onto this checkout.
"""

from __future__ import annotations

import os
import re
import stat
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
REPORTING_MD = REPO_ROOT / "docs" / "reporting.md"

_FENCE_RE = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def _walkthrough() -> str:
    text = REPORTING_MD.read_text(encoding="utf-8")
    blocks = _FENCE_RE.findall(text)
    assert len(blocks) == 1, (
        "docs/reporting.md must contain exactly one executable ```bash "
        f"walkthrough block, found {len(blocks)}"
    )
    assert "--html" in blocks[0], "the walkthrough must render an HTML report"
    assert "--dashboard" in blocks[0], "the walkthrough must boot the dashboard"
    assert "cmp live.html offline.html" in blocks[0], (
        "the walkthrough must prove the live-vs-offline byte identity"
    )
    return blocks[0]


def _shim(shim_dir: Path, name: str, exec_line: str) -> None:
    shim = shim_dir / name
    src = REPO_ROOT / "src"
    shim.write_text(
        "#!/bin/sh\n"
        f'PYTHONPATH="{src}${{PYTHONPATH:+:$PYTHONPATH}}" {exec_line}\n'
    )
    shim.chmod(shim.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)


def test_reporting_walkthrough_runs_end_to_end(tmp_path):
    shim_dir = tmp_path / "bin"
    shim_dir.mkdir()
    _shim(shim_dir, "memgaze", f'exec "{sys.executable}" -m repro.cli "$@"')
    # the doc says plain `python`; pin it to this interpreter + checkout
    _shim(shim_dir, "python", f'exec "{sys.executable}" "$@"')

    # the trap is harness-side, not part of the doc: if any step fails
    # under -e, the backgrounded daemon must not outlive the test
    script = tmp_path / "walkthrough.sh"
    script.write_text(
        "trap '[ -n \"${SERVE_PID:-}\" ] && kill -9 \"$SERVE_PID\" "
        "2>/dev/null || true' EXIT\n" + _walkthrough()
    )

    env = dict(os.environ)
    env["PATH"] = f"{shim_dir}{os.pathsep}{env['PATH']}"
    proc = subprocess.run(
        ["bash", "-euo", "pipefail", str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=560,
    )
    assert proc.returncode == 0, (
        f"walkthrough failed (exit {proc.returncode})\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    # the walkthrough's own cmp passed; spot-check its artifacts
    for page in ("kv.html", "live.html", "offline.html"):
        assert (tmp_path / page).stat().st_size > 10_000, f"{page} too small"
    assert (tmp_path / "serve-state" / "sessions" / "kv.npz").exists()
