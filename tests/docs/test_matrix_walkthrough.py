"""Execute the corpus/gating walkthrough from ``docs/matrix.md``.

The handbook's worked example (trace a three-cell corpus, run it cold,
re-run it warm from the content-addressed cache, prove the payloads
byte-identical, pass a loose gate, trip a strict one) is extracted
from the markdown and run verbatim under ``bash -euo pipefail`` — so
editing the walkthrough into something that no longer works, or
changing the CLI out from under it, fails the build instead of
shipping a broken handbook. A ``memgaze`` shim on ``PATH`` maps the
doc's commands onto ``python -m repro.cli`` from this checkout.
"""

from __future__ import annotations

import json
import os
import re
import stat
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
MATRIX_MD = REPO_ROOT / "docs" / "matrix.md"

_FENCE_RE = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def _walkthrough() -> str:
    text = MATRIX_MD.read_text(encoding="utf-8")
    blocks = _FENCE_RE.findall(text)
    assert len(blocks) == 1, (
        "docs/matrix.md must contain exactly one executable ```bash "
        f"walkthrough block, found {len(blocks)}"
    )
    assert "memgaze matrix" in blocks[0], "the walkthrough must run the matrix"
    assert "--gate" in blocks[0], "the walkthrough must gate"
    assert "cmp cold.json warm.json" in blocks[0], (
        "the walkthrough must prove warm == cold bytes"
    )
    return blocks[0]


def test_matrix_walkthrough_runs_end_to_end(tmp_path):
    shim_dir = tmp_path / "bin"
    shim_dir.mkdir()
    shim = shim_dir / "memgaze"
    src = REPO_ROOT / "src"
    shim.write_text(
        "#!/bin/sh\n"
        f'PYTHONPATH="{src}${{PYTHONPATH:+:$PYTHONPATH}}" '
        f'exec "{sys.executable}" -m repro.cli "$@"\n'
    )
    shim.chmod(shim.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)

    script = tmp_path / "walkthrough.sh"
    script.write_text(_walkthrough())

    env = dict(os.environ)
    env["PATH"] = f"{shim_dir}{os.pathsep}{env['PATH']}"
    proc = subprocess.run(
        ["bash", "-euo", "pipefail", str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=560,
    )
    assert proc.returncode == 0, (
        f"walkthrough failed (exit {proc.returncode})\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    # the walkthrough's own checks passed; spot-check its artifacts
    assert (tmp_path / "cold.json").read_bytes() == (tmp_path / "warm.json").read_bytes()
    verdict = json.loads((tmp_path / "verdict-fail.json").read_text(encoding="utf-8"))
    assert verdict["verdict"] == "regressed"
    assert verdict["cells"]["irr"]["metrics"]["dF_irr"]["regressed"] is True
    journal = (tmp_path / "matrix.jsonl").read_text(encoding="utf-8")
    assert journal.count('"mode": "cached"') >= 3  # the warm run hit the cache
