"""Relative-link validation for README.md and every ``docs/*.md``.

A doc that names a file which was later moved or renamed rots silently;
this test resolves every relative markdown link against the file that
contains it and fails on the first dangling target. External links
(``http(s)://``) and pure in-page anchors (``#...``) are out of scope —
the contract here is that *repo-relative* references stay true.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: inline markdown links: [text](target); images share the syntax
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(doc: Path):
    broken = []
    for target in _relative_links(doc):
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (doc.parent / rel).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)}: dangling links {broken}"


def test_docs_are_discovered():
    """The sweep must actually cover the handbook set (guards the glob)."""
    names = {f.name for f in _doc_files()}
    for expected in (
        "README.md",
        "architecture.md",
        "parallel.md",
        "passes.md",
        "performance.md",
        "cli.md",
    ):
        assert expected in names
