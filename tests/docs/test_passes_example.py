"""Execute the worked custom-pass example from ``docs/passes.md``.

The handbook promises that its ``StridedShare`` listing is a complete,
working pass. This test extracts that exact code block from the
markdown, executes it (which registers the pass), and runs it through
the fused executor and the parallel engine — so editing the example
into something that no longer runs, or renaming the APIs it uses,
fails the build instead of shipping broken documentation.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.parallel import ParallelEngine
from repro.core.passes import fused_scan, unregister_pass
from repro.trace.event import LoadClass, make_events

REPO_ROOT = Path(__file__).resolve().parents[2]
PASSES_MD = REPO_ROOT / "docs" / "passes.md"

_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _worked_example() -> str:
    text = PASSES_MD.read_text(encoding="utf-8")
    blocks = [b for b in _FENCE_RE.findall(text) if "@register_pass" in b]
    assert len(blocks) == 1, (
        "docs/passes.md must contain exactly one @register_pass worked "
        f"example code block, found {len(blocks)}"
    )
    return blocks[0]


@pytest.fixture
def strided_share_pass():
    code = _worked_example()
    namespace: dict = {}
    exec(compile(code, str(PASSES_MD), "exec"), namespace)  # noqa: S102
    yield namespace
    unregister_pass("strided-share")


def _trace(n=30_000, seed=3):
    rng = np.random.default_rng(seed)
    ev = make_events(
        ip=rng.integers(0, 20, n),
        addr=rng.integers(0, 1 << 16, n) * 8,
        cls=rng.integers(0, 3, n).astype(np.uint8),
    )
    sid = np.sort(rng.integers(0, 23, n)).astype(np.int32)
    return ev, sid


def test_example_registers_and_runs_fused(strided_share_pass):
    ev, sid = _trace()
    results = fused_scan(iter([(ev, sid)]), ["strided-share", "diagnostics"])
    want = int((ev["cls"] == int(LoadClass.STRIDED)).sum()) / len(ev)
    assert results["strided-share"] == want


def test_example_is_bit_identical_across_workers(strided_share_pass):
    """The doc's closing claim: 1 worker and 4 workers, same bits."""
    ev, sid = _trace()
    values = []
    for workers in (1, 4):
        with ParallelEngine(workers=workers, chunk_size=7_000) as eng:
            r = eng.run_passes(ev, ["strided-share"], sample_id=sid)
        values.append(r["strided-share"])
    assert values[0] == values[1]


def test_example_empty_trace(strided_share_pass):
    empty = make_events(ip=[], addr=[], cls=[])
    results = fused_scan(iter([]), ["strided-share"])
    assert results["strided-share"] == 0.0
    del empty
