"""Drift test: ``docs/cli.md`` must equal the rendered parser.

The CLI reference is generated from :func:`repro.cli.build_parser` by
``repro._util.clidoc``. Adding, removing, or re-documenting any
``memgaze`` flag without regenerating the file fails here, with the
regeneration command in the assertion message — the reference cannot go
stale silently.
"""

from __future__ import annotations

from pathlib import Path

from repro._util.clidoc import render_cli_markdown

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI_DOC = REPO_ROOT / "docs" / "cli.md"

REGEN = "PYTHONPATH=src python -m repro._util.clidoc > docs/cli.md"


def test_cli_reference_is_current():
    assert CLI_DOC.exists(), f"docs/cli.md is missing — generate it with: {REGEN}"
    committed = CLI_DOC.read_text(encoding="utf-8")
    rendered = render_cli_markdown()
    assert committed == rendered, (
        "docs/cli.md is stale (the parser in src/repro/cli.py changed); "
        f"regenerate it with: {REGEN}"
    )


def test_reference_covers_every_subcommand():
    """Every verb the parser knows appears as a section heading."""
    import argparse

    from repro.cli import build_parser

    text = CLI_DOC.read_text(encoding="utf-8")
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for choice in action._choices_actions:
                assert f"## `memgaze {choice.dest}`" in text


def test_reference_documents_new_toggles():
    """The shm / kernel toggles this repo adds must be in the reference."""
    text = CLI_DOC.read_text(encoding="utf-8")
    assert "--shm" in text and "--no-shm" in text
    assert "--reuse-kernel" in text and "fenwick" in text
