"""Execute the operator walkthrough from ``docs/serving.md``.

The handbook's worked example (trace two tenants, boot a sharded
daemon, submit concurrently, diff every live query against the offline
report, shut down gracefully, validate the archives) is extracted from
the markdown and run verbatim under ``bash -euo pipefail`` — so editing
the walkthrough into something that no longer works, or changing the
CLI out from under it, fails the build instead of shipping a broken
handbook. A ``memgaze`` shim on ``PATH`` maps the doc's commands onto
``python -m repro.cli`` from this checkout.
"""

from __future__ import annotations

import os
import re
import stat
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVING_MD = REPO_ROOT / "docs" / "serving.md"

_FENCE_RE = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def _walkthrough() -> str:
    text = SERVING_MD.read_text(encoding="utf-8")
    blocks = _FENCE_RE.findall(text)
    assert len(blocks) == 1, (
        "docs/serving.md must contain exactly one executable ```bash "
        f"walkthrough block, found {len(blocks)}"
    )
    assert "memgaze serve" in blocks[0], "the walkthrough must boot the daemon"
    assert "--serve-workers" in blocks[0], "the walkthrough must shard"
    return blocks[0]


def test_serving_walkthrough_runs_end_to_end(tmp_path):
    shim_dir = tmp_path / "bin"
    shim_dir.mkdir()
    shim = shim_dir / "memgaze"
    src = REPO_ROOT / "src"
    shim.write_text(
        "#!/bin/sh\n"
        f'PYTHONPATH="{src}${{PYTHONPATH:+:$PYTHONPATH}}" '
        f'exec "{sys.executable}" -m repro.cli "$@"\n'
    )
    shim.chmod(shim.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)

    # the trap is harness-side, not part of the doc: if any step fails
    # under -e, the backgrounded daemon must not outlive the test
    script = tmp_path / "walkthrough.sh"
    script.write_text(
        "trap '[ -n \"${SERVE_PID:-}\" ] && kill -9 \"$SERVE_PID\" "
        "2>/dev/null || true' EXIT\n" + _walkthrough()
    )

    env = dict(os.environ)
    env["PATH"] = f"{shim_dir}{os.pathsep}{env['PATH']}"
    proc = subprocess.run(
        ["bash", "-euo", "pipefail", str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=560,
    )
    assert proc.returncode == 0, (
        f"walkthrough failed (exit {proc.returncode})\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    # the walkthrough's own diffs passed; spot-check the daemon's output
    assert (tmp_path / "serve-state" / "sessions" / "alpha.npz").exists()
    assert (tmp_path / "serve.jsonl").exists()
