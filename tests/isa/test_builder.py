"""Tests for the structured-programming builder DSL."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.cfg import natural_loops
from repro.isa.program import Opcode


class TestLoops:
    def test_loop_lowering_shape(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            with p.loop("i", 0, 10):
                p.mov("x", "i")
            p.ret(0)
        m = b.build()
        proc = m.procedures["f"]
        labels = set(proc.blocks)
        assert any(l.startswith("Lhead") for l in labels)
        assert any(l.startswith("Lbody") for l in labels)
        assert any(l.startswith("Llatch") for l in labels)
        loops = natural_loops(proc)
        assert len(loops) == 1

    def test_nested_loops_have_depth(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            with p.loop("i", 0, 4):
                with p.loop("j", 0, 4):
                    p.mov("x", "j")
            p.ret(0)
        loops = natural_loops(b.build().procedures["f"])
        assert sorted(l.depth for l in loops) == [1, 2]

    def test_zero_step_rejected(self):
        b = ProgramBuilder("m")
        with pytest.raises(ValueError):
            with b.proc("f") as p:
                with p.loop("i", 0, 4, step=0):
                    pass

    def test_downward_loop_uses_gt(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            with p.loop("i", 10, 0, step=-1):
                p.mov("x", "i")
            p.ret(0)
        proc = b.build().procedures["f"]
        branches = [
            i for blk in proc.blocks.values() for i in blk.instrs if i.op is Opcode.BR
        ]
        assert branches[0].cond == "gt"


class TestConditionals:
    def test_if_else_requires_otherwise(self):
        b = ProgramBuilder("m")
        with pytest.raises(RuntimeError):
            with b.proc("f") as p:
                with p.if_else("lt", "x", 1) as otherwise:
                    p.mov("y", 1)
                p.ret(0)

    def test_if_else_builds_both_branches(self):
        b = ProgramBuilder("m")
        with b.proc("f", params=("x",)) as p:
            with p.if_else("lt", "x", 5) as otherwise:
                p.mov("y", 1)
                otherwise()
                p.mov("y", 2)
            p.ret("y")
        m = b.build()
        assert len(m.procedures["f"].blocks) >= 4

    def test_if_without_else(self):
        b = ProgramBuilder("m")
        with b.proc("f", params=("x",)) as p:
            p.mov("y", 0)
            with p.if_("ge", "x", 3):
                p.mov("y", 1)
            p.ret("y")
        b.build().procedures["f"].validate()


class TestMisc:
    def test_implicit_return(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            p.mov("x", 1)
        m = b.build()
        assert m.procedures["f"].blocks["entry"].terminator.op is Opcode.RET

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            p._start_block  # appease linters; real check below
        with pytest.raises(ValueError):
            with b.proc("g") as p:
                p._start_block("entry")

    def test_empty_module_rejected(self):
        with pytest.raises(ValueError):
            ProgramBuilder("m").build()

    def test_source_lines_increment(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            p.mov("a", 1)
            p.mov("b", 2)
            p.ret(0)
        instrs = b.build().procedures["f"].instructions()
        assert [i.line for i in instrs] == [1, 2, 3]

    def test_load_helpers(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            p.load_local("a", offset=8)
            p.load_global("g", offset=16)
            p.ret(0)
        loads = b.build().procedures["f"].loads()
        assert loads[0].mem.base == "fp"
        assert loads[1].mem.base == "gp"
