"""Tests for the ISA interpreter."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter
from repro.simmem.address_space import AddressSpace
from repro.trace.event import LoadClass


def _build(body, params=("a", "b")):
    b = ProgramBuilder("m")
    with b.proc("main", params=params) as p:
        body(p)
    return b.build()


class TestArithmeticAndControl:
    def test_return_value(self):
        m = _build(lambda p: p.ret(42))
        assert Interpreter(m).run("main", 0, 0).rv == 42

    def test_arithmetic(self):
        def body(p):
            p.add("x", "a", "b")
            p.mul("y", "x", 3)
            p.sub("z", "y", 1)
            p.ret("z")
        m = _build(body)
        assert Interpreter(m).run("main", 2, 3).rv == 14

    def test_and_shr(self):
        def body(p):
            p.and_("x", "a", 0xFF)
            p.shr("y", "x", 4)
            p.ret("y")
        m = _build(body)
        assert Interpreter(m).run("main", 0x1A7, 0).rv == 0xA

    def test_loop_sums(self):
        def body(p):
            p.mov("acc", 0)
            with p.loop("i", 0, "a"):
                p.add("acc", "acc", "i")
            p.ret("acc")
        m = _build(body)
        assert Interpreter(m).run("main", 10, 0).rv == 45

    def test_branch_both_ways(self):
        def body(p):
            with p.if_else("lt", "a", 5) as otherwise:
                p.mov("r", 1)
                otherwise()
                p.mov("r", 2)
            p.ret("r")
        m = _build(body)
        assert Interpreter(m).run("main", 3, 0).rv == 1
        assert Interpreter(m).run("main", 9, 0).rv == 2

    def test_instruction_cap(self):
        def body(p):
            with p.loop("i", 0, 10_000):
                p.mov("x", "i")
            p.ret(0)
        m = _build(body)
        with pytest.raises(RuntimeError):
            Interpreter(m, max_instrs=100).run("main", 0, 0)

    def test_bad_mode(self):
        m = _build(lambda p: p.ret(0))
        with pytest.raises(ValueError):
            Interpreter(m).run("main", 0, 0, mode="weird")


class TestCalls:
    def test_call_passes_args_and_returns(self):
        b = ProgramBuilder("m")
        with b.proc("double", params=("x",)) as p:
            p.add("r", "x", "x")
            p.ret("r")
        with b.proc("main", params=("a",)) as p:
            p.call("out", "double", "a")
            p.ret("out")
        m = b.build()
        assert Interpreter(m).run("main", 21).rv == 42

    def test_registers_are_per_activation(self):
        b = ProgramBuilder("m")
        with b.proc("clobber") as p:
            p.mov("x", 999)
            p.ret(0)
        with b.proc("main") as p:
            p.mov("x", 5)
            p.call(None, "clobber")
            p.ret("x")
        m = b.build()
        assert Interpreter(m).run("main").rv == 5

    def test_too_many_args_rejected(self):
        b = ProgramBuilder("m")
        with b.proc("f", params=("x",)) as p:
            p.ret("x")
        with b.proc("main") as p:
            p.call("r", "f", 1, 2)
            p.ret(0)
        m = b.build()
        with pytest.raises(TypeError):
            Interpreter(m).run("main")


class TestMemoryAndEvents:
    def test_load_store_roundtrip(self):
        def body(p):
            p.store(7, base="a", offset=8)
            p.load("v", base="a", offset=8)
            p.ret("v")
        m = _build(body)
        res = Interpreter(m).run("main", 0x1000, 0)
        assert res.rv == 7
        assert res.n_stores == 1
        assert res.n_loads == 1

    def test_oracle_events_have_addresses(self):
        def body(p):
            with p.loop("i", 0, 4):
                p.load("v", base="a", index="i", scale=8)
            p.ret(0)
        m = _build(body)
        res = Interpreter(m).run("main", 0x1000, 0)
        assert len(res.events) == 4
        assert list(res.events["addr"]) == [0x1000, 0x1008, 0x1010, 0x1018]
        assert list(res.events["t"]) == [0, 1, 2, 3]

    def test_class_map_tags_events(self):
        def body(p):
            p.load("v", base="a")
            p.ret(0)
        m = _build(body)
        load_addr = m.procedures["main"].loads()[0].addr
        res = Interpreter(m, classes={load_addr: LoadClass.STRIDED}).run("main", 0x10, 0)
        assert res.events["cls"][0] == int(LoadClass.STRIDED)

    def test_fp_gp_are_set(self):
        def body(p):
            p.load_local("l", offset=0)
            p.load_global("g", offset=0)
            p.ret(0)
        m = _build(body)
        res = Interpreter(m).run("main", 0, 0)
        addrs = res.events["addr"]
        assert addrs[0] != addrs[1]

    def test_instrumented_mode_emits_no_oracle_events(self):
        def body(p):
            p.load("v", base="a")
            p.ret(0)
        m = _build(body)
        res = Interpreter(m).run("main", 0x10, 0, mode="instrumented")
        assert res.events is None
        assert len(res.packets) == 0  # no ptwrites in this module
        assert res.n_loads == 1

    def test_uninitialised_memory_reads_zero(self):
        def body(p):
            p.load("v", base="a", offset=0x5000)
            p.ret("v")
        m = _build(body)
        assert Interpreter(m).run("main", 0x20_0000, 0).rv == 0

    def test_shared_space_across_runs(self):
        space = AddressSpace()
        m1 = _build(lambda p: (p.store(5, base="a"), p.ret(0))[-1])
        m2 = _build(lambda p: (p.load("v", base="a"), p.ret("v"))[-1])
        Interpreter(m1, space).run("main", 0x900, 0)
        assert Interpreter(m2, space).run("main", 0x900, 0).rv == 5
