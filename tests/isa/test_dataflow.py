"""Tests for induction-variable and invariance analysis."""

from repro.isa.builder import ProgramBuilder
from repro.isa.dataflow import analyze_induction


def _analyze(build_body):
    b = ProgramBuilder("m")
    with b.proc("f", params=("base", "n")) as p:
        build_body(p)
        p.ret(0)
    proc = b.build().procedures["f"]
    infos = analyze_induction(proc)
    assert len(infos) >= 1
    # return the outermost loop's info (or the only one)
    return min(infos.values(), key=lambda i: i.loop.depth)


class TestBasicIVs:
    def test_loop_counter_is_iv(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.mov("x", "i")
        info = _analyze(body)
        assert "i" in info.ivs
        assert info.ivs["i"] == 1

    def test_stride_value(self):
        def body(p):
            with p.loop("i", 0, 100, step=3):
                p.mov("x", "i")
        info = _analyze(body)
        assert info.ivs["i"] == 3

    def test_negative_stride(self):
        def body(p):
            with p.loop("i", 100, 0, step=-2):
                p.mov("x", "i")
        info = _analyze(body)
        assert info.ivs["i"] == -2


class TestDerivedIVs:
    def test_mul_by_constant(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.mul("i8", "i", 8)
        info = _analyze(body)
        assert info.ivs["i8"] == 8

    def test_add_invariant(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.add("off", "i", "base")  # base is a param: invariant
        info = _analyze(body)
        assert "off" in info.ivs
        assert info.ivs["off"] == 1

    def test_mul_by_invariant_register_unknown_stride(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.mul("scaled", "i", "n")
        info = _analyze(body)
        assert "scaled" in info.ivs
        assert info.ivs["scaled"] is None

    def test_chained_derivation(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.mul("a", "i", 4)
                p.add("b", "a", 16)
        info = _analyze(body)
        assert info.ivs["b"] == 4

    def test_mov_propagates(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.mov("c", "i")
        info = _analyze(body)
        assert info.ivs["c"] == 1


class TestNonIVs:
    def test_multiple_defs_not_iv(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.add("x", "x", 1)
                p.add("x", "x", 2)
        info = _analyze(body)
        assert "x" not in info.ivs

    def test_load_defined_register(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.load("v", base="base", index="i", scale=8)
                p.add("w", "v", 1)
        info = _analyze(body)
        assert "v" in info.load_defined
        assert "w" not in info.ivs

    def test_invariants(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.add("x", "base", "n")
        info = _analyze(body)
        assert info.is_invariant("base")
        assert info.is_invariant("n")
        assert info.is_invariant("fp")

    def test_derived_invariant(self):
        """A register computed from invariants is invariant, not irregular."""
        def body(p):
            with p.loop("i", 0, 10):
                p.mul("row", "base", 8)
                p.add("x", "row", "n")
        info = _analyze(body)
        assert info.is_invariant("row")
        assert info.is_invariant("x")

    def test_outer_iv_times_constant_invariant_in_inner_loop(self):
        """The matmul shape: crow = i*8n computed inside the j loop."""
        from repro.isa.builder import ProgramBuilder
        from repro.isa.dataflow import analyze_induction

        b = ProgramBuilder("m")
        with b.proc("f", params=("C", "n")) as p:
            with p.loop("i", 0, 8):
                with p.loop("j", 0, 8):
                    p.mul("crow", "i", 64)
                    p.add("coff", "crow", "j")
                    p.load("cv", base="C", index="coff")
            p.ret(0)
        proc = b.build().procedures["f"]
        infos = analyze_induction(proc)
        inner = max(infos.values(), key=lambda x: x.loop.depth)
        assert inner.is_invariant("crow")
        assert inner.is_iv("coff")  # crow(inv) + j(IV)

    def test_self_dependent_non_affine(self):
        def body(p):
            with p.loop("i", 0, 10):
                p.mul("acc", "acc", 2)
        info = _analyze(body)
        assert "acc" not in info.ivs
