"""Tests for the program representation."""

import pytest

from repro.isa.program import (
    BasicBlock,
    CODE_BASE,
    Instruction,
    MemRef,
    Module,
    Opcode,
    PROC_STRIDE,
    Procedure,
)


class TestMemRef:
    def test_requires_a_register(self):
        with pytest.raises(ValueError):
            MemRef()

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            MemRef(base="r1", scale=3)

    def test_registers(self):
        assert MemRef(base="a", index="b", scale=8).registers() == ("a", "b")
        assert MemRef(base="a").registers() == ("a",)
        assert MemRef(index="b", scale=4).registers() == ("b",)

    def test_str(self):
        assert str(MemRef(base="a", index="b", scale=8, offset=4)) == "[a + b*8 + 4]"


class TestInstruction:
    def test_br_needs_two_targets(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, cond="lt", srcs=(1, 2), targets=("one",))

    def test_br_cond_validated(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, cond="weird", srcs=(1, 2), targets=("a", "b"))

    def test_jmp_needs_one_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, targets=())

    def test_load_needs_mem(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, dest="r")

    def test_defined_register(self):
        add = Instruction(Opcode.ADD, dest="r", srcs=(1, 2))
        assert add.defined_register() == "r"
        store = Instruction(Opcode.STORE, srcs=("r",), mem=MemRef(base="a"))
        assert store.defined_register() is None

    def test_terminators(self):
        assert Instruction(Opcode.RET, srcs=(0,)).is_terminator
        assert not Instruction(Opcode.MOV, dest="r", srcs=(0,)).is_terminator


def _tiny_proc(name="p") -> Procedure:
    block = BasicBlock("entry", [Instruction(Opcode.RET, srcs=(0,))])
    return Procedure(name=name, entry="entry", blocks={"entry": block})


class TestProcedure:
    def test_validate_missing_entry(self):
        proc = Procedure(name="p", entry="nope", blocks={})
        with pytest.raises(ValueError):
            proc.validate()

    def test_validate_open_block(self):
        proc = Procedure(
            name="p",
            entry="entry",
            blocks={"entry": BasicBlock("entry", [Instruction(Opcode.NOP)])},
        )
        with pytest.raises(ValueError):
            proc.validate()

    def test_validate_unknown_target(self):
        block = BasicBlock("entry", [Instruction(Opcode.JMP, targets=("ghost",))])
        proc = Procedure(name="p", entry="entry", blocks={"entry": block})
        with pytest.raises(ValueError):
            proc.validate()

    def test_mid_block_terminator_rejected(self):
        block = BasicBlock(
            "entry",
            [Instruction(Opcode.RET, srcs=(0,)), Instruction(Opcode.RET, srcs=(0,))],
        )
        proc = Procedure(name="p", entry="entry", blocks={"entry": block})
        with pytest.raises(ValueError):
            proc.validate()


class TestModule:
    def test_duplicate_procedure_rejected(self):
        m = Module("m")
        m.add(_tiny_proc("a"))
        with pytest.raises(ValueError):
            m.add(_tiny_proc("a"))

    def test_layout_assigns_addresses(self):
        m = Module("m")
        m.add(_tiny_proc("a"))
        m.add(_tiny_proc("b"))
        m.layout()
        a = m.procedures["a"].instructions()[0].addr
        b = m.procedures["b"].instructions()[0].addr
        assert a == CODE_BASE
        assert b == CODE_BASE + PROC_STRIDE

    def test_proc_of_addr(self):
        m = Module("m")
        m.add(_tiny_proc("a"))
        m.add(_tiny_proc("b"))
        m.layout()
        assert m.proc_of_addr(CODE_BASE) == "a"
        assert m.proc_of_addr(CODE_BASE + PROC_STRIDE + 4) == "b"
        assert m.proc_of_addr(0) is None

    def test_source_lines_requires_layout(self):
        m = Module("m")
        m.add(_tiny_proc("a"))
        with pytest.raises(RuntimeError):
            m.source_lines()

    def test_n_instructions(self):
        m = Module("m")
        m.add(_tiny_proc("a"))
        assert m.n_instructions() == 1
