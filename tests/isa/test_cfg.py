"""Tests for CFG construction, dominators, and natural loops."""

from repro.isa.builder import ProgramBuilder
from repro.isa.cfg import build_cfg, dominators, innermost_loop_of, natural_loops


def _loopy_proc():
    b = ProgramBuilder("m")
    with b.proc("f") as p:
        with b_loop(p, "i"):
            with b_loop(p, "j"):
                p.mov("x", "j")
        p.ret(0)
    return b.build().procedures["f"]


def b_loop(p, var):
    return p.loop(var, 0, 8)


class TestCFG:
    def test_entry_first_in_rpo(self):
        proc = _loopy_proc()
        cfg = build_cfg(proc)
        assert cfg.rpo[0] == "entry"

    def test_preds_inverse_of_succs(self):
        proc = _loopy_proc()
        cfg = build_cfg(proc)
        for label, succs in cfg.succs.items():
            for s in succs:
                assert label in cfg.preds[s]

    def test_all_blocks_reachable_in_builder_output(self):
        proc = _loopy_proc()
        cfg = build_cfg(proc)
        assert cfg.reachable() == set(proc.blocks)


class TestDominators:
    def test_entry_dominates_everything(self):
        proc = _loopy_proc()
        cfg = build_cfg(proc)
        dom = dominators(cfg)
        for label in cfg.reachable():
            assert "entry" in dom[label]

    def test_every_block_dominates_itself(self):
        proc = _loopy_proc()
        cfg = build_cfg(proc)
        for label, doms in dominators(cfg).items():
            assert label in doms


class TestNaturalLoops:
    def test_two_nested_loops_found(self):
        loops = natural_loops(_loopy_proc())
        assert len(loops) == 2

    def test_nesting_relationship(self):
        loops = natural_loops(_loopy_proc())
        inner = next(l for l in loops if l.depth == 2)
        outer = next(l for l in loops if l.depth == 1)
        assert inner.body < outer.body
        assert inner.parent is outer

    def test_latches_inside_body(self):
        for loop in natural_loops(_loopy_proc()):
            assert loop.latches <= loop.body

    def test_innermost_loop_of(self):
        proc = _loopy_proc()
        loops = natural_loops(proc)
        inner = next(l for l in loops if l.depth == 2)
        # a block only in the inner loop maps to the inner loop
        only_inner = next(iter(inner.body - next(l for l in loops if l.depth == 1).latches))
        found = innermost_loop_of(only_inner, loops)
        assert found is inner

    def test_straight_line_has_no_loops(self):
        b = ProgramBuilder("m")
        with b.proc("f") as p:
            p.mov("x", 1)
            p.ret(0)
        assert natural_loops(b.build().procedures["f"]) == []
