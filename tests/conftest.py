"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmem import AccessRecorder, AddressSpace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def recorder() -> AccessRecorder:
    return AccessRecorder()


@pytest.fixture
def small_config() -> SamplingConfig:
    return SamplingConfig(period=1000, buffer_capacity=128, fill_jitter=0.0)


@pytest.fixture
def mixed_events() -> np.ndarray:
    """A deterministic stream mixing strided, irregular, and constant loads."""
    rng = np.random.default_rng(42)
    n = 20_000
    kind = np.arange(n) % 4
    addr = np.where(
        kind < 2,
        0x7000_0000 + (np.arange(n) * 8) % 4096,  # strided sweep over 4 KiB
        np.where(
            kind == 2,
            0x7010_0000 + rng.integers(0, 512, n) * 8,  # irregular in 4 KiB
            0x7FFF_0000,  # constant frame scalar
        ),
    )
    cls = np.where(
        kind < 2, int(LoadClass.STRIDED), np.where(kind == 2, int(LoadClass.IRREGULAR), int(LoadClass.CONSTANT))
    )
    fn = (np.arange(n) >= n // 2).astype(np.uint32)
    return make_events(ip=0x40_0000 + (kind * 4), addr=addr, cls=cls, fn=fn)
