"""Shared fixtures for the test suite.

Randomness discipline (``docs/testing.md``): tests never call
``np.random.default_rng`` with an ad-hoc literal — they take the ``rng``
(or ``make_rng``) fixture, which derives a generator from one suite-wide
seed plus the test's node id via :func:`repro._util.rng.derive_rng`. Every
test is reproducible in isolation (the stream depends only on the seed
and the test's identity, not on execution order), and the whole suite
can be re-rolled with ``MEMGAZE_TEST_SEED=n pytest`` to shake out
seed-lottery assertions.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.simmem import AccessRecorder, AddressSpace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden report fixtures under tests/integration/"
        "golden/ from current analysis output instead of comparing",
    )


@pytest.fixture(scope="session")
def test_seed() -> int:
    """The suite-wide base seed (override with ``MEMGAZE_TEST_SEED``)."""
    return int(os.environ.get("MEMGAZE_TEST_SEED", "20220828"))


@pytest.fixture
def make_rng(test_seed: int, request: pytest.FixtureRequest):
    """Factory for named, decoupled per-test generators.

    ``make_rng()`` is the test's main stream; ``make_rng("writer")``
    etc. give statistically independent side streams. All derive from
    the suite seed and this test's node id.
    """

    def make(*context: str | int) -> np.random.Generator:
        return derive_rng(test_seed, request.node.nodeid, *context)

    return make


@pytest.fixture
def rng(make_rng) -> np.random.Generator:
    """This test's deterministic random generator."""
    return make_rng()


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def recorder() -> AccessRecorder:
    return AccessRecorder()


@pytest.fixture
def small_config() -> SamplingConfig:
    return SamplingConfig(period=1000, buffer_capacity=128, fill_jitter=0.0)


@pytest.fixture
def mixed_events(test_seed: int) -> np.ndarray:
    """A deterministic stream mixing strided, irregular, and constant loads."""
    rng = derive_rng(test_seed, "mixed-events")
    n = 20_000
    kind = np.arange(n) % 4
    addr = np.where(
        kind < 2,
        0x7000_0000 + (np.arange(n) * 8) % 4096,  # strided sweep over 4 KiB
        np.where(
            kind == 2,
            0x7010_0000 + rng.integers(0, 512, n) * 8,  # irregular in 4 KiB
            0x7FFF_0000,  # constant frame scalar
        ),
    )
    cls = np.where(
        kind < 2, int(LoadClass.STRIDED), np.where(kind == 2, int(LoadClass.IRREGULAR), int(LoadClass.CONSTANT))
    )
    fn = (np.arange(n) >= n // 2).astype(np.uint32)
    return make_events(ip=0x40_0000 + (kind * 4), addr=addr, cls=cls, fn=fn)
